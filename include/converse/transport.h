// Property-based fuzz harness for the pluggable transport layer
// (DESIGN.md "Transport interface", tools/simfuzz --transport).
//
// A case runs a *loopback* multi-node machine under the deterministic
// simulator: one process hosts every node (MachineConfig::mynode == -1),
// so inter-node traffic crosses the virtual wire — records are encoded,
// header-validated and counted exactly like the socket backend would,
// and an optional deterministic disconnect injector swallows records.
// The workload counts logical sends and deliveries itself, giving the
// conservation oracle
//
//     delivered == sent - wire_dropped
//
// where wire_dropped is the transport's own logical-weight accounting of
// injected losses (a dropped aggregation frame counts its packed
// messages; a dropped node-cast record counts the receiving node's PEs).
// Immediate messages ride the reliable control plane and must conserve
// exactly.  The planted fault (`plant_lost`) drops one record *without*
// counting it — a correct oracle must fail the case, which is the
// harness's self-test.
#pragma once

#include <cstdint>
#include <string>

#include "converse/sim.h"

namespace converse::transport {

/// Parameters of one transport fuzz case (a pure function of this struct;
/// see src/core/transport/transport_fuzz.cpp).
struct TransportFuzzParams {
  std::uint64_t seed = 1;
  int npes = 6;
  int nnodes = 3;   // npes == nnodes exercises the socket (1 PE/node) shape
  int actions = 32; // root actions injected per PE
  /// Per-wire-record disconnect probability; a disconnect swallows
  /// `disconnect_lost` consecutive records before the link reconnects.
  double disconnect_rate = 0.0;
  int disconnect_lost = 2;
  bool aggregate = false;  // frames as the wire unit
  /// Plant a silent single-record loss (not accounted in wire_dropped);
  /// the conservation oracle is expected to FAIL the case.
  bool plant_lost = false;
};

struct TransportFuzzResult {
  bool ok = false;
  std::string failure;  // first violated invariant (empty when ok)
  SimReport report;
  // Transport counters at quiescence (PE 0's CmiGetStats snapshot).
  std::uint64_t wire_frames_sent = 0;
  std::uint64_t wire_dropped = 0;
  std::uint64_t wire_reconnects = 0;
};

/// Run one deterministic case; same params => same result and the same
/// SimReport::trace_hash (the wire's send/drop decisions are folded into
/// the event-trace hash).
TransportFuzzResult RunTransportFuzzCase(const TransportFuzzParams& params);

/// Shrink a failing case (fewer actions, fewer PEs/nodes, no aggregation,
/// no injected disconnects) with at most `budget` deterministic re-runs.
TransportFuzzParams MinimizeTransport(const TransportFuzzParams& failing,
                                      int budget = 64);

/// One-line replay command for a parameter set.
std::string FormatTransportReplay(const TransportFuzzParams& params);

}  // namespace converse::transport
