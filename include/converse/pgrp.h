// Processor groups (paper EMI, appendix §3.8).
//
// "Often entities in a subgroup of processors need to engage in group
// communication. The machine layer ... is best able to optimize such group
// operations."  A group is a tree of PEs built explicitly by its root
// (CmiPgrpCreate + CmiAddChildren) and then distributed to the members so
// that multicasts can forward along the tree.
//
// Divergence from the appendix (documented): the original machine layers
// distributed group descriptors implicitly; here the root must call
// CmiPgrpDistribute(group) once the tree is built, and members learn the
// descriptor asynchronously.  CmiPgrpReady(group) reports arrival.
#pragma once

#include <vector>

namespace converse {

/// Group handle; value-copyable.  `id` is machine-unique.
struct Pgrp {
  int id = -1;
  int root = -1;
};

/// Create a group rooted at the calling PE (the root is a member).
void CmiPgrpCreate(Pgrp* group);

/// Free local resources associated with the group (call on each member).
void CmiPgrpDestroy(Pgrp* group);

/// Add `size` PEs from `procs` as children of `penum`.  Root-only, before
/// distribution.  `penum` must already be in the group.
void CmiAddChildren(Pgrp* group, int penum, int size, const int procs[]);

/// Ship the finished descriptor to all members (root-only).
void CmiPgrpDistribute(const Pgrp* group);

/// True once this PE has the descriptor (always true on the root).
bool CmiPgrpReady(const Pgrp* group);

/// Tree queries; require the descriptor locally.
int CmiPgrpRoot(const Pgrp* group);
int CmiNumChildren(const Pgrp* group, int penum);
int CmiParent(const Pgrp* group, int penum);
void CmiChildren(const Pgrp* group, int node, int* children);
std::vector<int> CmiPgrpMembers(const Pgrp* group);

/// Asynchronous multicast of a complete message (header + payload) to all
/// members of `group` except the caller (the caller need not belong to the
/// group).  Forwards along the group tree; each member delivers the message
/// to its original handler.
struct CommHandle;  // from cmi.h
void CmiAsyncMulticastImpl(const Pgrp* group, unsigned int size, void* msg);

}  // namespace converse

#include "converse/cmi.h"

namespace converse {
inline CommHandle CmiAsyncMulticast(const Pgrp* group, unsigned int size,
                                    void* msg) {
  CmiAsyncMulticastImpl(group, size, msg);
  return CommHandle{nullptr};
}
}  // namespace converse

// -- module registration anchor ------------------------------------------------
// Including this header registers the module's per-PE init hook during
// static initialization, so handler indices are identical on every PE of
// any machine started afterwards (see converse/detail/module.h).  The
// anonymous-namespace anchor is deliberate: one idempotent call per TU.
namespace converse::detail {
int PgrpModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int pgrp_module_anchor = converse::detail::PgrpModuleRegister();
}  // namespace
