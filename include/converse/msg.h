// Generalized messages (paper §3.1.1).
//
// A Converse message is an arbitrary block of memory whose first words form
// a fixed header naming the handler that will consume it (by index into a
// per-PE handler table, the portable choice the paper recommends over raw
// function pointers).  A message can represent a network message, a
// scheduler entry for a ready thread, or a delayed function call — the
// scheduler treats them all identically.
//
// Layout:   [ MsgHeader | payload bytes ... ]
// The public API addresses a message by the pointer to its header, exactly
// like the original C API: user code allocates
// `CmiAlloc(CmiMsgHeaderSizeBytes() + payload_len)` and writes payload bytes
// after the header.
#pragma once

#include <cstddef>
#include <cstdint>

namespace converse {

/// Queueing strategy tag carried by a message (hint for handlers that
/// enqueue the message into the scheduler queue). Mirrors CQS_QUEUEING_*.
enum class Queueing : std::uint8_t {
  kFifo = 0,
  kLifo = 1,
  kIntFifo = 2,   // integer priority, FIFO among equals
  kIntLifo = 3,   // integer priority, LIFO among equals
  kBitvecFifo = 4,
  kBitvecLifo = 5,
};

namespace detail {

inline constexpr std::uint32_t kMsgMagicAlive = 0xC04E5E11u;
inline constexpr std::uint32_t kMsgMagicFreed = 0xDEADBEEFu;

struct alignas(16) MsgHeader {
  std::uint32_t handler;     // index into the PE handler table
  std::uint32_t total_size;  // header + payload, in bytes
  std::int32_t int_prio;     // convenience integer priority (0 = default)
  std::uint16_t source_pe;   // filled in by the machine layer on send
  std::uint8_t queueing;     // Queueing strategy tag
  std::uint8_t flags;        // detail::MsgFlags
  std::uint32_t magic;       // liveness canary (debug double-free detection)
  std::uint32_t seq;         // per-sender sequence number (trace/debug)
  std::uint64_t reserved;    // keeps header at 32 bytes / 16-byte alignment
};
static_assert(sizeof(MsgHeader) == 32);

enum MsgFlags : std::uint8_t {
  kMsgFlagNone = 0,
  // Bits 0-1 are reserved for CciCheck's ownership state machine
  // (check.cpp kStateMask); keep flag bits above them.
  /// Advisory: the buffer came from a per-PE message pool.  Re-stamped by
  /// detail::MsgPoolRestampFlag wherever a whole header is memcpy'd.
  kMsgFlagPooled = 0x4,
  /// Machine-internal aggregation frame (src/core/stream.cpp): the payload
  /// is a packed batch of small messages, unpacked at the receiver.  Never
  /// dispatched through the handler table.
  kMsgFlagFrame = 0x8,
  /// Machine-internal spanning-tree broadcast wrapper: the payload is a
  /// BcastWire descriptor plus one complete inner message; receivers
  /// re-forward to their tree children before dispatching the inner.
  kMsgFlagBcast = 0x10,
  /// The buffer is a view into a received aggregation frame, not a
  /// standalone allocation: CmiFree releases the frame's reference count
  /// (freeing the frame with the last view) instead of touching the pool.
  /// Cleared by MsgPoolRestampFlag wherever a whole header is memcpy'd.
  kMsgFlagInFrame = 0x20,
  /// Machine-internal shared-broadcast block (src/core/stream.cpp): one
  /// refcounted payload allocation delivered to every spanning-tree
  /// destination.  CmiFree on the block pointer releases one reference;
  /// the last release frees the storage.
  kMsgFlagSbcast = 0x40,
  /// The buffer is the read-only view embedded in a shared-broadcast block
  /// (always combined with kMsgFlagInFrame): CmiFree resolves the owning
  /// block through the view's back pointer and releases one reference.
  /// Cleared by MsgPoolRestampFlag wherever a whole header is memcpy'd.
  kMsgFlagShared = 0x80,
};

/// Any machine-internal carrier bit (frame, broadcast wrapper, or
/// shared-broadcast block).
inline constexpr std::uint8_t kMsgFlagCarrierMask =
    kMsgFlagFrame | kMsgFlagBcast | kMsgFlagSbcast;

inline MsgHeader* Header(void* msg) { return static_cast<MsgHeader*>(msg); }
inline const MsgHeader* Header(const void* msg) {
  return static_cast<const MsgHeader*>(msg);
}

}  // namespace detail

/// Size of the message header in bytes (paper appendix §3.1).
constexpr int CmiMsgHeaderSizeBytes() {
  return static_cast<int>(sizeof(detail::MsgHeader));
}

/// Allocate a message of `nbytes` total (header included; nbytes must be at
/// least CmiMsgHeaderSizeBytes()).  The header is initialized with an
/// invalid handler; the caller must CmiSetHandler before sending.
void* CmiAlloc(std::size_t nbytes);

/// Free a message previously obtained from CmiAlloc / CmiGrabBuffer.
void CmiFree(void* msg);

/// Initialize the header of a caller-managed `nbytes` buffer in place so it
/// can be sent like a CmiAlloc'd message: invalid handler (CmiSetHandler is
/// still required before sending), FIFO queueing, no flags, live magic.
/// The buffer must be at least CmiMsgHeaderSizeBytes() and aligned like
/// MsgHeader (16 bytes).  Converse never frees such a buffer's storage.
void CmiInitMsgHeader(void* msg, std::size_t nbytes);

/// Pointer to the payload area (first byte after the header).
inline void* CmiMsgPayload(void* msg) {
  return static_cast<char*>(msg) + sizeof(detail::MsgHeader);
}
inline const void* CmiMsgPayload(const void* msg) {
  return static_cast<const char*>(msg) + sizeof(detail::MsgHeader);
}

/// Total size (header + payload) recorded in the message header.
inline std::size_t CmiMsgTotalSize(const void* msg) {
  return detail::Header(msg)->total_size;
}

/// Payload size in bytes.
inline std::size_t CmiMsgPayloadSize(const void* msg) {
  return detail::Header(msg)->total_size - sizeof(detail::MsgHeader);
}

/// PE that sent this message (valid once delivered by the machine layer).
inline int CmiMsgSourcePe(const void* msg) {
  return detail::Header(msg)->source_pe;
}

/// Convenience: allocate a message with `payload_len` payload bytes, set its
/// handler, and copy `payload` (may be nullptr for uninitialized payload).
void* CmiMakeMessage(int handler, const void* payload, std::size_t payload_len);

/// True if `msg` looks like a live Converse message (canary check).
bool CmiMsgIsValid(const void* msg);

}  // namespace converse
