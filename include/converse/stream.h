// Cst — the small-message aggregation (streaming) layer.
//
// Fine-grained message-driven modules send many tiny messages; on the
// in-process machine each one would pay a full ring slot, pool allocation
// and consumer wakeup of its own.  When aggregation is enabled
// (MachineConfig::aggregate_sends / CONVERSE_AGG), CmiSyncSend and
// CmiSyncSendAndFree append messages of at most agg_max_msg bytes into a
// per-(sender, destination) aggregate frame instead; the frame travels as
// one machine message and is unpacked at the receiver, preserving
// per-sender FIFO order with respect to large (bypass) messages.
//
// Frames flush automatically when they fill (agg_frame_bytes /
// agg_frame_msgs), whenever the sending PE blocks or goes idle in the
// scheduler, when the entry function returns, and on CmiFlush().  Large
// messages, self-sends and immediate (out-of-band) messages always bypass
// the layer.
#pragma once

namespace converse {

/// Flush every open aggregation frame on the calling PE to the network.
/// Returns the number of frames flushed (0 when none were open or the
/// layer is disabled).  Call after a latency-sensitive send when the
/// scheduler will not go idle soon.
int CmiFlush();

/// True when the aggregation layer is active on the calling PE.
bool CmiAggActive();

}  // namespace converse
