// Request/response service runtime (the first macro workload).
//
// The paper's thesis is that the Converse primitives — scheduler, Cth
// threads, Cmm mailboxes — compose into whole client paradigms.  This layer
// is that claim applied to the north-star scenario: a service with many
// concurrent sessions, bounded tail latency, and graceful overload behavior.
//
// Shape: session ids are sharded across PEs (owner = session % npes).  A
// client stamps each request with its send time and an optional deadline
// and sends it to the owner PE.  There an admission stage either refuses it
// immediately (per-PE queue-depth cap — the shed notice goes straight back)
// or parks it in a Cmm mailbox; a pool of Cth worker threads drains the
// mailbox, sheds requests whose deadline has already passed, spends the
// configured service time per request (virtual time under the sim backend,
// CPU spinning on a real machine), updates the session's state, and sends
// the reply.  The client records completed-request latency into a
// log-bucketed histogram (converse/util/histogram.h) that merges across
// PEs.
//
// Load is generated open-loop: arrival times are a function of the offered
// rate alone, never of replies, so offered rates above capacity actually
// overload the server instead of self-throttling.  Under the sim backend
// the generator is a chain of delayed self-sends (virtual-time exact and
// deterministic: same seed => same event-trace hash); on a real machine it
// paces against the wall clock while polling the scheduler.
//
// tests/test_service.cpp pins exact virtual-time quantiles, simfuzz
// --service checks request conservation under fault injection, and
// benchmarks/bench_service.cpp measures p50/p99/p999 against offered rate
// (BENCH_service.json).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "converse/sim.h"
#include "converse/util/histogram.h"

namespace converse::svc {

/// Arrival process of the open-loop generator.
enum class Arrival : std::uint8_t {
  kUniform,  // fixed gap 1/rate: the analytic baseline
  kPoisson,  // exponential gaps (classic open-loop service model)
  kBurst,    // `burst` back-to-back requests every burst/rate seconds
};

struct SvcConfig {
  std::uint64_t sessions = 1024;  // global session-id space (sharded by PE)
  int workers = 4;                // Cth worker threads per PE
  double service_time_us = 2.0;   // per-request service time
  bool exp_service = false;       // exponential service times (mean as above)
  std::uint32_t queue_cap = 64;   // admission cap on queued requests per PE
  double deadline_us = 0.0;       // shed a request older than this at
                                  // dequeue time (0 = no deadline)
  std::uint32_t payload_bytes = 32;  // request padding beyond the header
  /// Planted bug for the conservation-oracle self-test: every Nth completed
  /// request silently skips its reply send (0 = off).
  std::uint32_t lose_reply_every = 0;
  unsigned hist_sub_bits = util::LogHistogram::kDefaultSubBits;
};

struct SvcLoad {
  double rate_per_pe = 100000.0;      // offered requests/s per client PE
  std::uint64_t requests_per_pe = 1000;
  Arrival arrival = Arrival::kPoisson;
  std::uint32_t burst = 8;            // burst size for Arrival::kBurst
  std::uint64_t seed = 1;             // per-PE generator PRNG streams
};

/// Per-PE counters plus the client-side latency histogram.  Single-writer:
/// each PE touches only its own slot; read them after RunConverse returns.
struct SvcPeStats {
  // Client side.
  std::uint64_t requests_sent = 0;
  std::uint64_t replies_received = 0;       // completed requests
  std::uint64_t shed_notices_received = 0;  // refused requests
  // Server side (mirrored into CmiStats::svc_admitted/svc_shed/
  // svc_completed for this PE).
  std::uint64_t requests_received = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_queue = 0;     // refused at admission (queue-depth cap)
  std::uint64_t shed_deadline = 0;  // shed at dequeue (deadline passed)
  std::uint64_t completed = 0;      // replies sent
  // Internal timer traffic (delayed self-sends: generator ticks, service
  // clocks).  Self-sends are never faulted, so fired == sent always.
  std::uint64_t timers_sent = 0;
  std::uint64_t timers_fired = 0;
  util::LogHistogram latency_ns{util::LogHistogram::kDefaultSubBits};
};

/// One service instance spanning every PE of one machine run.  Construct it
/// before RunConverse; inside the entry each PE calls Start(), then
/// GenerateLoad() (no-op when requests_per_pe is 0), then Serve(), which
/// runs the scheduler until the run completes — by global quiescence under
/// the sim backend, by an explicit all-PEs-drained exit broadcast otherwise
/// — and finally winds down the worker threads.
class Service {
 public:
  Service(const SvcConfig& cfg, int npes);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  void Start();
  void GenerateLoad(const SvcLoad& load);
  void Serve();

  const SvcConfig& config() const { return cfg_; }
  int npes() const { return npes_; }

  /// Per-PE stats (valid once RunConverse returned).
  const SvcPeStats& PeStats(int pe) const;
  /// Every PE's counters summed and histograms merged.
  SvcPeStats Total() const;

  struct PerPe;  // internal (src/svc/svc.cpp)

 private:
  SvcConfig cfg_;
  int npes_;
  std::vector<std::unique_ptr<PerPe>> pes_;
};

/// Owner PE of a session id.
inline int SessionOwner(std::uint64_t session, int npes) {
  return static_cast<int>(session % static_cast<std::uint64_t>(npes));
}

// ---------------------------------------------------------------------------
// Service fuzzing (tools/simfuzz --service): one seeded service run under
// the deterministic sim, checked against the request-conservation oracles.
// ---------------------------------------------------------------------------

struct SvcFuzzParams {
  std::uint64_t seed = 1;
  int npes = 4;
  std::uint64_t sessions = 64;
  int workers = 3;
  std::uint64_t requests_per_pe = 48;
  double rate_per_pe = 200000.0;  // virtual-time offered rate per PE
  std::uint32_t queue_cap = 8;
  SimFaults faults;
  /// Plant the lost-reply bug (SvcConfig::lose_reply_every = 5) so the
  /// conservation oracle demonstrably catches and shrinks it.
  bool plant_lost_reply = false;
};

struct SvcFuzzResult {
  bool ok = false;
  std::string failure;  // first violated oracle (empty when ok)
  SimReport report;
  SvcPeStats totals;    // merged service counters of the run
};

/// Run one deterministic service case and check the oracles:
///  * the run ends by global quiescence (no stuck PE, no wedged worker);
///  * server bookkeeping balances exactly, under any fault mix:
///    requests_received == admitted + shed_queue, and
///    admitted == completed + shed_deadline;
///  * timer conservation: timers_fired == timers_sent (self-sends are
///    exempt from fault injection);
///  * total message conservation: every service message received equals
///    messages sent corrected by the injector's exact drop/dup counts;
///  * with no faults enabled, end-to-end conservation — every request
///    arrives, and every admitted request yields exactly one reply or one
///    shed notice at the client (this is the oracle that catches
///    plant_lost_reply).
SvcFuzzResult RunSvcFuzzCase(const SvcFuzzParams& params);

/// Greedy shrink of a failing case (fewer requests, workers, PEs, disabled
/// fault dimensions), like sim::Minimize.
SvcFuzzParams MinimizeSvc(const SvcFuzzParams& failing, int budget = 48);

/// One-line replay command, e.g.
/// "tools/simfuzz --service --seed 7 --pes 4 --requests 48".
std::string FormatSvcReplay(const SvcFuzzParams& params);

}  // namespace converse::svc
