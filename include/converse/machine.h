// The in-process Converse machine (paper §3.1.3 MMI, substituted per
// DESIGN.md §2): each PE is an OS thread with a private in-queue; the only
// communication between PEs is through messages.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>

#include "converse/netmodel.h"

namespace converse {

struct SimConfig;  // converse/sim.h

/// Which communication substrate carries inter-PE messages (DESIGN.md
/// "Transport interface").  All backends sit behind the same machine-layer
/// hook, so aggregation frames, spanning-tree broadcasts, NetModel and the
/// deterministic sim work identically on each.
enum class CmiTransport {
  /// Every PE is a thread of this process; delivery is the lock-free
  /// in-process rings.  The only choice that allows nnodes == 1.
  kInproc,

  /// One OS process per PE ("node" == PE), connected by Unix-domain or TCP
  /// sockets with batched writev frames.  Requires nnodes == npes.
  kSocket,

  /// Two-level SMP-node mode: PEs within a node are threads sharing the
  /// in-process rings; nodes talk over sockets with one comm drain per
  /// node.  nnodes in [1, npes].
  kSmpNode,
};

struct MachineConfig {
  /// Number of processing elements (threads). May exceed hardware cores;
  /// all blocking in the runtime is condvar-based, so oversubscription is
  /// safe (if slow).
  int npes = 2;

  /// Seed for the per-PE deterministic RNG streams (load balancer, tests).
  unsigned long long seed = 0x5eedULL;

  /// Optional network latency model; nullptr = zero-latency shared memory.
  /// When set, a message becomes visible to its receiver only after
  /// model.OnewayUs(payload) microseconds of wall time.  Sends a PE makes
  /// to itself never cross the modeled network and pay no model latency
  /// (so a delayed self-send is a pure timer; see converse/cmi.h).
  const NetModel* model = nullptr;

  /// Default stack size for thread objects created on this machine.
  std::size_t default_stack_bytes = 256 * 1024;

  /// Branching factor of the machine spanning tree (broadcast/reduce).
  int spantree_branching = 4;

  /// Microseconds an idle scheduler busy-polls the network before blocking
  /// on the condvar.  0 (default) blocks immediately — right for
  /// oversubscribed hosts; a few µs mimics the spin-waiting of dedicated
  /// 1990s nodes and shaves wakeup latency when each PE owns a core.
  /// The poll itself is lock-free (atomic ring/overflow probes).
  double idle_spin_us = 0.0;

  /// Capacity (slots) of each PE's lock-free delivery ring; rounded up to
  /// a power of two, minimum 4.  Each PE has two rings (regular and
  /// immediate lane), 16 bytes per slot.  When a ring fills, senders spill
  /// into an unbounded mutex-guarded overflow list, so this is a
  /// throughput knob, never a correctness limit.  Tiny values (e.g. 4)
  /// are useful in tests to exercise the overflow path.
  int ring_capacity = 1024;

  /// Small-message aggregation (converse/stream.h): batch messages below
  /// agg_max_msg bytes into per-destination frames so one ring slot, one
  /// allocation and one consumer wakeup amortize over a whole burst.
  /// -1 (default) defers to the CONVERSE_AGG environment variable (unset or
  /// "0" = off, any other integer = on; malformed values are rejected with
  /// a "[Cmi]" diagnostic and treated as unset); 0 forces off; 1 forces on.
  /// Automatically off when a network latency model is attached (frames
  /// would distort per-message latency semantics).
  int aggregate_sends = -1;

  /// Largest message (header + payload) eligible for aggregation.
  std::uint32_t agg_max_msg = 512;

  /// A frame flushes once its packed entries reach this many bytes...
  std::uint32_t agg_frame_bytes = 3072;

  /// ...or this many messages, whichever comes first (frames also flush
  /// when the sender's scheduler goes idle and on explicit CmiFlush()).
  std::uint32_t agg_frame_msgs = 32;

  /// Adaptive solo-flush bypass: when consecutive frames to a destination
  /// flush with a single entry (request/response traffic that pays frame
  /// overhead for no batching), sends to it temporarily skip the
  /// aggregation layer, re-probing periodically.  Off restores exact
  /// every-send-frames behavior (some tests count frames precisely).
  bool agg_solo_bypass = true;

  /// Spanning-tree broadcasts whose total size (header + payload) is at
  /// least this many bytes share one refcounted payload block instead of
  /// copying once per destination: the block is allocated (and the user
  /// message copied) exactly once at the root, forwarded down the tree by
  /// pointer, and every PE dispatches a read-only view into it.
  /// -1 (default) defers to the CONVERSE_SBCAST environment variable
  /// (unset = 4096; "0" = off; a number = that threshold in bytes; a
  /// malformed value is rejected with a "[Cmi]" diagnostic and treated as
  /// unset); 0 forces off.  Like the tree itself, inactive under a latency
  /// model.
  std::int64_t bcast_share_min = -1;

  /// Communication substrate (see CmiTransport above).
  CmiTransport transport = CmiTransport::kInproc;

  /// Number of nodes the machine's PEs are split across (block
  /// distribution: node n owns a contiguous PE range).  Meaningful for
  /// kSmpNode; kSocket forces nnodes = npes; kInproc requires 1.
  int nnodes = 1;

  /// Which node THIS process hosts.  -1 (default) = loopback mode: this
  /// process hosts every node and inter-node traffic crosses a virtual
  /// wire in-memory (encode + validate + deliver) — this is how the
  /// deterministic sim drives the socket backends.  >= 0 = real
  /// multi-process mode: this process hosts exactly node `mynode` and
  /// inter-node traffic crosses real sockets (launch with
  /// tools/converserun, which sets the CONVERSE_NODE family of variables).
  int mynode = -1;

  /// Real mode rendezvous: directory where each node binds its Unix-domain
  /// listening socket ("node<i>.sock").  nullptr defers to CONVERSE_RDV.
  const char* rendezvous_dir = nullptr;

  /// Real mode alternative rendezvous: when > 0, nodes listen on TCP
  /// 127.0.0.1:(tcp_base_port + node) instead of Unix sockets.
  int tcp_base_port = 0;

  /// Real mode: abort the machine when a peer node stays unreachable
  /// (reconnect attempts keep failing) for this long.  0 defers to
  /// CONVERSE_WIRE_TIMEOUT_MS, default 10000.
  int wire_timeout_ms = 0;

  /// Loopback-mode fault injection (virtual wire only; real sockets never
  /// inject faults): probability per wire record of a simulated transient
  /// disconnect that loses the record (and counts the loss), plus how many
  /// consecutive records one disconnect swallows.  Used by
  /// `simfuzz --transport` conservation sweeps.
  double wire_disconnect_rate = 0.0;
  int wire_disconnect_lost = 1;
  unsigned long long wire_seed = 0x77695265ULL;  // 'wiRe'

  /// Planted-bug self-test: when > 0, the loopback wire silently drops the
  /// N-th eligible record *without* counting it, so conservation oracles
  /// must flag the run.  Proves the fuzz harness can see real losses.
  int wire_plant_lost = 0;

  /// Optional deterministic-simulation backend (converse/sim.h): PEs are
  /// serialized under a seeded scheduler and a virtual clock, with optional
  /// message-fault injection.  nullptr = normal threaded execution.  The
  /// machine copies the config; the pointee need not outlive this struct.
  const SimConfig* sim = nullptr;

  /// Streams used by CmiPrintf / CmiError / CmiScanf. Tests may redirect.
  std::FILE* out = nullptr;  // nullptr -> stdout
  std::FILE* err = nullptr;  // nullptr -> stderr
  std::FILE* in = nullptr;   // nullptr -> stdin
};

/// Runs a complete Converse machine: spawns `config.npes` PE threads, runs
/// module init hooks on each (fixed order, so handler indices agree), then
/// runs `entry(pe, npes)` on every PE.  Returns when every PE's entry has
/// returned and the machine has been torn down.  This is the in-process
/// equivalent of `ConverseInit ... ConverseExit`.
///
/// When CONVERSE_NODE is set in the environment (tools/converserun sets it
/// for every rank it spawns), the transport/topology fields above are
/// overridden from CONVERSE_NODE / CONVERSE_NNODES / CONVERSE_NPES /
/// CONVERSE_TRANSPORT / CONVERSE_RDV / CONVERSE_TCP_BASE /
/// CONVERSE_WIRE_TIMEOUT_MS, so an unmodified single-process program
/// becomes one rank of a multi-process run.  This process then spawns
/// threads only for its own node's PEs, and `entry` runs once per local PE
/// (still with the *global* pe / npes arguments).
///
/// Machines are sequential within a process: at most one may run at a time.
void RunConverse(const MachineConfig& config,
                 const std::function<void(int pe, int npes)>& entry);

/// Convenience overload with default configuration.
void RunConverse(int npes, const std::function<void(int pe, int npes)>& entry);

/// True while called from inside a PE thread of a running machine.
bool CmiInsideMachine();

}  // namespace converse
