// EMI scatter support — "advance receive" calls (paper §3.1.3, EMI).
//
// A scatter registration describes how to recognize an incoming message (an
// offset/value pair tested against the payload) and where to deposit parts
// of its payload.  Registrations are expected (but not required) to be made
// before the message arrives; if a matching message is already queued it is
// scattered immediately.  Two variants exist, selected by `notify_handler`:
// with a handler, a short empty notification message is enqueued after the
// scatter so the recipient learns the data has arrived.
//
// (The gather side of the EMI is CmiVectorSend, declared in cmi.h.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace converse {

struct ScatterPart {
  std::size_t payload_offset;  // where in the incoming payload to read
  std::size_t length;          // bytes to copy
  void* destination;           // user memory to copy into
};

/// Register an advance receive on the current PE.  An incoming message
/// matches when the 32-bit word at `match_offset` bytes into its *payload*
/// equals `match_value`.  On match the listed parts are copied out, the
/// message is consumed (its normal handler is NOT invoked), and, if
/// `notify_handler >= 0`, a notification message whose payload is the
/// matched value is enqueued for that handler.
///
/// Returns a registration id.  One-shot by default; a persistent
/// registration keeps matching until cancelled.
int CmiScatterRegister(std::size_t match_offset, std::uint32_t match_value,
                       std::vector<ScatterPart> parts, int notify_handler = -1,
                       bool persistent = false);

/// Cancel a registration (no-op if it already fired as a one-shot).
void CmiScatterCancel(int registration_id);

/// Number of live scatter registrations on this PE (diagnostics).
int CmiScatterCount();

}  // namespace converse
