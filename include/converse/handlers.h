// Handler registration (paper §3.1.1, appendix §3.1).
//
// Any function used to handle messages must first be registered with the
// scheduler; registration returns a small integer index stored in the
// message header.  Indices must agree across PEs, which Converse guarantees
// by contract: user code registers handlers in the same order on every PE
// (the entry function runs identically on all PEs), and runtime modules
// register theirs through the per-PE init-hook mechanism which runs in a
// fixed process-wide order.
#pragma once

#include <functional>

namespace converse {

/// A message handler.  The original C API uses `void (*)(void*)`; we accept
/// any callable so tests and language runtimes can register capturing
/// lambdas.  Handlers run on the PE that owns the message.
using Handler = std::function<void(void* msg)>;

/// Raw function-pointer form, kept for API fidelity with the paper.
using HANDLER = void (*)(void* msg);

/// Register `fn` with the current PE's handler table; returns the handler
/// index to be stored into messages via CmiSetHandler.
int CmiRegisterHandler(Handler fn);

/// Set the handler field of a message.
void CmiSetHandler(void* msg, int handler_id);

/// Handler index currently stored in the message.
int CmiGetHandler(const void* msg);

/// Look up the handler function for a message on the current PE (paper's
/// CmiGetHandlerFunction).  The reference remains valid until machine exit.
const Handler& CmiGetHandlerFunction(const void* msg);

/// Number of handlers registered on the current PE.
int CmiNumHandlers();

namespace detail {
/// Invoke the handler of `msg` under the machine-owned buffer protocol:
/// if `system_owned` is true and the handler does not CmiGrabBuffer, the
/// buffer is freed when the handler returns.  If false, the handler owns
/// the message (scheduler-queue deliveries) and must free it.
void DispatchMessage(void* msg, bool system_owned);
}  // namespace detail

}  // namespace converse
