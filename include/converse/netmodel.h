// Network latency models for the machines of the paper's evaluation
// (Figures 4-8).
//
// The paper measures Converse round-trip message time on five 1996
// platforms.  That hardware is unavailable, so per DESIGN.md §2 we model
// each platform's native one-way message time as
//
//   t(n) = alpha + n * per_byte + ceil(n / packet) * per_packet
//          + (n > copy_threshold ? n * copy_per_byte : 0)
//
// where the last term reproduces the T3D's packetization-copy jump at 16 KB
// that the paper calls out ("the jump at 16K bytes is due to copying during
// packetization").  The models are used two ways:
//  * analytically, by the figure benches (native curve = t(n), Converse
//    curve = t(n) + measured software overhead of this implementation);
//  * as a timed-delivery backend of the in-process machine (messages become
//    visible to the receiver only after t(n) of wall time), used by
//    integration tests to exercise latency-dependent code paths.
//
// Parameter values are calibrated to the era's published numbers (FM on
// Myrinet: ~25 us for <=128 B packets, Converse ~31 us; T3D: a few us short
// -message latency, >120 MB/s; ATM TCP/IP stacks: hundreds of us; SP-1 MPL:
// ~60 us; Paragon/SUNMOS: ~25 us, ~170 MB/s).  Absolute fidelity is not the
// goal; curve *shape* is (see EXPERIMENTS.md).
#pragma once

#include <cstddef>

namespace converse {

struct NetModel {
  const char* name = "zero-latency";
  double alpha_us = 0.0;          // fixed per-message one-way cost
  double per_byte_us = 0.0;       // inverse bandwidth
  std::size_t packet_bytes = 0;   // packetization unit (0 = none)
  double per_packet_us = 0.0;     // per-packet overhead
  std::size_t copy_threshold_bytes = 0;  // extra-copy threshold (0 = never)
  double copy_per_byte_us = 0.0;  // cost of that extra copy

  /// Modeled one-way time for a message with `payload_bytes` of user data.
  double OnewayUs(std::size_t payload_bytes) const;
};

namespace netmodels {

/// HP workstations on an ATM switch (Figure 4).
NetModel AtmHp();
/// Cray T3D with the FM package (Figure 5) — shows the 16 KB copy jump.
NetModel CrayT3D();
/// Sun workstations on Myrinet with Illinois Fast Messages (Figure 6).
NetModel MyrinetFm();
/// IBM SP-1 (Figure 7; the paper's figure caption says SP1).
NetModel IbmSp1();
/// Intel Paragon running SUNMOS (Figure 8).
NetModel ParagonSunmos();

}  // namespace netmodels

}  // namespace converse
