// The scheduler's pluggable queueing module (paper §2.3, §3.1.2).
//
// "Such prioritization mechanisms can be provided only by allowing the
// application to select the type of queueing strategy it wants to use" —
// CqsQueue supports FIFO, LIFO, signed integer priorities and lexicographic
// bit-vector priorities, with FIFO or LIFO ordering among equal priorities,
// all in one queue (a message's strategy is chosen per enqueue, mirroring
// CqsEnqueueGeneral in the original system).
//
// Cost model ("need based cost", §3): unprioritized FIFO/LIFO entries live
// in a deque and never touch the heap; only prioritized entries pay the
// O(log n) heap cost.
//
// Ordering rules:
//  * Integer priorities: smaller value dequeues first; 0 is the priority of
//    unprioritized entries.
//  * Bit-vector priorities: compared lexicographically as an unsigned bit
//    string, smaller first; a bit-vector that is a strict prefix of another
//    compares smaller.  The empty bit-vector equals integer priority 0.
//  * Entries with priority exactly equal to the default (int 0) that were
//    enqueued *with* an explicit priority rank after unprioritized entries
//    of the same age class only via sequence order within their structure;
//    ties between the deque and the heap at the default priority favor the
//    deque (matching the zeroq of the original CqsQueue).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "converse/msg.h"

namespace converse {

/// A priority value: sign-biased 32-bit words compared lexicographically.
/// Integer priority p maps to the single word (p XOR 0x80000000), which
/// preserves signed order under unsigned comparison.
class CqsPrio {
 public:
  CqsPrio() = default;  // default priority (== int 0)

  static CqsPrio FromInt(std::int32_t p) {
    CqsPrio out;
    out.words_.push_back(static_cast<std::uint32_t>(p) ^ 0x80000000u);
    return out;
  }

  /// Bit-vector priority: `nbits` bits stored MSB-first in `words`
  /// (words[0] bit 31 is the first bit), as in the original API.
  static CqsPrio FromBitvec(const std::uint32_t* words, int nbits);

  /// Three-way comparison: negative if *this dequeues before `o`.
  int Compare(const CqsPrio& o) const;

  bool IsDefault() const;
  const std::vector<std::uint32_t>& words() const { return words_; }
  int nbits() const { return nbits_; }

 private:
  std::vector<std::uint32_t> words_;  // empty == default
  int nbits_ = 0;                     // 0 for int/default priorities
};

/// The scheduler queue.  Not thread-safe: each PE owns exactly one.
class CqsQueue {
 public:
  CqsQueue() = default;
  ~CqsQueue();

  CqsQueue(const CqsQueue&) = delete;
  CqsQueue& operator=(const CqsQueue&) = delete;

  /// Unprioritized FIFO enqueue (the common, cheap path): straight into
  /// the deque lane, no CqsPrio construction or comparison at all.
  void Enqueue(void* msg) { EnqueueZero(msg, /*lifo=*/false); }

  /// Unprioritized LIFO enqueue (same dedicated deque lane).
  void EnqueueLifo(void* msg) { EnqueueZero(msg, /*lifo=*/true); }

  /// General enqueue with an explicit strategy and priority.
  void EnqueueGeneral(void* msg, Queueing strategy, CqsPrio prio);

  /// Convenience wrappers.
  void EnqueueIntPrio(void* msg, std::int32_t prio, bool lifo = false) {
    EnqueueGeneral(msg, lifo ? Queueing::kIntLifo : Queueing::kIntFifo,
                   CqsPrio::FromInt(prio));
  }
  void EnqueueBitvecPrio(void* msg, const std::uint32_t* words, int nbits,
                         bool lifo = false) {
    EnqueueGeneral(msg, lifo ? Queueing::kBitvecLifo : Queueing::kBitvecFifo,
                   CqsPrio::FromBitvec(words, nbits));
  }

  /// Remove and return the highest-priority message; nullptr if empty.
  void* Dequeue();

  bool Empty() const { return Length() == 0; }
  std::size_t Length() const { return zeroq_.size() + heap_.size(); }

  /// Number of entries that have ever been enqueued (diagnostics).
  std::uint64_t TotalEnqueued() const { return seq_; }

 private:
  void EnqueueZero(void* msg, bool lifo);

  struct Entry {
    CqsPrio prio;
    std::uint64_t order;  // FIFO: ascending seq; LIFO: descending
    void* msg;
    // prio.Compare(default) < 0, cached at push time so Dequeue's
    // heap-vs-deque decision costs one bool instead of a View+Compare.
    bool before_default;
  };
  struct EntryGreater {
    bool operator()(const Entry& a, const Entry& b) const {
      const int c = a.prio.Compare(b.prio);
      if (c != 0) return c > 0;
      return a.order > b.order;
    }
  };

  std::deque<void*> zeroq_;
  std::priority_queue<Entry, std::vector<Entry>, EntryGreater> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace converse
