// Futures — single-assignment remote values (the Cfuture facility of the
// Converse lineage; the paper's §6 roadmap of richer coordination
// primitives built from the same components).
//
// A future is created on one PE; any PE that learns its handle may set it
// exactly once; the owner waits for the value.  Waiting follows the dual
// control regime: a Cth thread suspends (the scheduler keeps the PE
// busy), the main context receives only future traffic (SPM purity).
//
// Built entirely on public Converse facilities: one handler, the thread
// object, CmiGetSpecificMsg.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace converse {

struct Cfuture {
  std::int32_t pe = -1;
  std::uint32_t idx = 0;
  bool IsValid() const { return pe >= 0; }
};

/// Create an empty future owned by the calling PE.
Cfuture CfutureCreate();

/// Fulfill `f` with `len` bytes (callable from any PE, exactly once).
void CfutureSet(Cfuture f, const void* data, std::size_t len);

/// True once the value has arrived (owner only).
bool CfutureReady(Cfuture f);

/// Wait for and return the value (owner only).  Destroys nothing: the
/// value stays readable until CfutureDestroy.
const std::vector<char>& CfutureWait(Cfuture f);

/// Release the future's storage (owner only).
void CfutureDestroy(Cfuture f);

/// Typed convenience.
template <typename T>
void CfutureSetValue(Cfuture f, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  CfutureSet(f, &value, sizeof(T));
}
template <typename T>
T CfutureWaitValue(Cfuture f) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto& bytes = CfutureWait(f);
  T out;
  std::memcpy(&out, bytes.data(), sizeof(T));
  return out;
}

/// Number of live futures on this PE (diagnostics).
int CfutureLiveCount();

}  // namespace converse

// -- module registration anchor ------------------------------------------------
namespace converse::detail {
int FuturesModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int futures_module_anchor =
    converse::detail::FuturesModuleRegister();
}  // namespace
