// cpvm — a PVM-style message-passing runtime on Converse (paper §1: "Our
// initial implementation includes ... PVM", §5: "Prototype implementations
// of PVM, NXLib, and SM ... are complete"; supported "both in SPMD as well
// as multithreaded mode").
//
// One task per PE: tids are PE numbers.  The classic PVM 3 calling
// sequence is preserved — pvm_initsend / pvm_pk* / pvm_send on the sender,
// pvm_recv / pvm_upk* on the receiver — including typed pack buffers that
// detect unpack-type mismatches (reported by throwing PvmError rather than
// PVM's errno scheme).
//
// Control regime is chosen per call site exactly as in the SM layer:
// pvm_recv called from the PE main context blocks SPM-style (only cpvm
// traffic is received); called from a Cth thread it suspends just that
// thread, giving the multithreaded mode.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace converse::pvm {

inline constexpr int PvmAnyTid = -1;
inline constexpr int PvmAnyTag = -1;

class PvmError : public std::runtime_error {
 public:
  explicit PvmError(const std::string& what) : std::runtime_error(what) {}
};

/// Task id of the caller (== PE number).
int pvm_mytid();
/// Number of tasks (== number of PEs).
int pvm_ntasks();

// ---- Send side ----------------------------------------------------------------

/// Clear the send buffer; returns its buffer id (always 1 here).
int pvm_initsend();

int pvm_pkint(const int* data, int n, int stride = 1);
int pvm_pklong(const long* data, int n, int stride = 1);
int pvm_pkfloat(const float* data, int n, int stride = 1);
int pvm_pkdouble(const double* data, int n, int stride = 1);
int pvm_pkbyte(const char* data, int n, int stride = 1);
int pvm_pkstr(const char* s);

/// Send the current send buffer to task `tid` with `tag`.
int pvm_send(int tid, int tag);
/// Send to a list of tasks.
int pvm_mcast(const int* tids, int n, int tag);
/// Send to every task including the caller (extension).
int pvm_bcast_all(int tag);

// ---- Receive side ---------------------------------------------------------------

/// Blocking receive matching (tid, tag); wildcards PvmAnyTid / PvmAnyTag.
/// Makes the matched message the active receive buffer; returns its id.
int pvm_recv(int tid, int tag);
/// Nonblocking: like pvm_recv but returns 0 when no match is buffered.
int pvm_nrecv(int tid, int tag);
/// Nonblocking probe: positive if a match is buffered, else 0.
int pvm_probe(int tid, int tag);
/// Length/tag/source of the active receive buffer.
int pvm_bufinfo(int bufid, int* bytes, int* tag, int* tid);

int pvm_upkint(int* data, int n, int stride = 1);
int pvm_upklong(long* data, int n, int stride = 1);
int pvm_upkfloat(float* data, int n, int stride = 1);
int pvm_upkdouble(double* data, int n, int stride = 1);
int pvm_upkbyte(char* data, int n, int stride = 1);
int pvm_upkstr(char* s);  // buffer must be large enough (PVM semantics)

}  // namespace converse::pvm

// -- module registration anchor ------------------------------------------------
// Including this header registers the module's per-PE init hook during
// static initialization, so handler indices are identical on every PE of
// any machine started afterwards (see converse/detail/module.h).  The
// anonymous-namespace anchor is deliberate: one idempotent call per TU.
namespace converse::detail {
int PvmModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int pvm_module_anchor = converse::detail::PvmModuleRegister();
}  // namespace
