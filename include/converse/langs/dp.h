// dp — a small data-parallel language runtime on Converse (paper §1 lists
// "DP-Charm (a data parallel language)" among the initial clients).
//
// Provides block-distributed 1-D arrays with elementwise operations, halo
// (shift) exchange, global reductions, and gather-to-root — the substrate
// a data-parallel notation compiles to.  The communication is loosely
// synchronous SPMD (explicit control regime, §2.2): every PE calls each
// collective array operation in the same order.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <functional>
#include <type_traits>
#include <vector>

#include "converse/collectives.h"

namespace converse::dp {

/// Block distribution of n elements over npes PEs: the first `n % npes`
/// PEs get one extra element.
class Distribution1D {
 public:
  Distribution1D(std::size_t n, int npes, int pe);

  std::size_t global_size() const { return n_; }
  std::size_t local_size() const { return end_ - begin_; }
  std::size_t begin() const { return begin_; }  // first global index here
  std::size_t end() const { return end_; }      // one past last

  /// PE owning global index i.
  int Owner(std::size_t i) const;

 private:
  std::size_t n_;
  int npes_;
  std::size_t begin_;
  std::size_t end_;
};

namespace detail {
/// Blocking halo exchange along the PE line: sends this PE's first/last
/// element to its left/right neighbor and receives the neighbors' boundary
/// elements.  Non-periodic: ghosts at the ends are left untouched.
/// All PEs with a nonempty block must call this collectively.
void HaloExchange(const void* first_elem, const void* last_elem,
                  void* left_ghost, void* right_ghost, std::size_t elem_size,
                  bool has_left, bool has_right);

/// Gather variable-size blocks to PE 0 (others pass their block; PE 0
/// receives all blocks in PE order into `out`).  Returns true on PE 0.
bool GatherToRoot(const void* local, std::size_t local_bytes,
                  std::vector<char>* out);
}  // namespace detail

/// A block-distributed array of trivially copyable T.  Construction and
/// every method marked [collective] must be executed on all PEs.
template <typename T>
class Array1D {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// [collective] Create with `n` global elements, value-initialized.
  Array1D(std::size_t n, int npes, int pe)
      : dist_(n, npes, pe), data_(dist_.local_size()) {}

  const Distribution1D& dist() const { return dist_; }
  std::size_t global_size() const { return dist_.global_size(); }
  std::size_t local_size() const { return dist_.local_size(); }

  /// Local element by *global* index (must be owned here).
  T& operator[](std::size_t global_i) {
    assert(global_i >= dist_.begin() && global_i < dist_.end());
    return data_[global_i - dist_.begin()];
  }
  const T& operator[](std::size_t global_i) const {
    assert(global_i >= dist_.begin() && global_i < dist_.end());
    return data_[global_i - dist_.begin()];
  }

  T* local_data() { return data_.data(); }
  const T* local_data() const { return data_.data(); }

  /// Apply fn(global_index, element) to every local element.
  void ForEach(const std::function<void(std::size_t, T&)>& fn) {
    for (std::size_t i = 0; i < data_.size(); ++i) {
      fn(dist_.begin() + i, data_[i]);
    }
  }

  /// [collective] Global reduction of fn(global_i, element) contributions,
  /// summed with the given built-in reducer over doubles.
  double ReduceSum(const std::function<double(std::size_t, const T&)>& fn) {
    double acc = 0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
      acc += fn(dist_.begin() + i, data_[i]);
    }
    return CmiAllReduceF64(acc, CmiReducerSumF64());
  }

  /// [collective] Exchange boundary elements with PE-line neighbors.
  /// After the call, left_ghost()/right_ghost() hold the neighboring
  /// elements (unchanged at the array ends).
  void ExchangeHalo() {
    if (global_size() == 0) return;
    // The neighbor protocol requires every PE to hold at least one
    // element (n >= npes); an empty block would break its neighbors'
    // receives.
    assert(!data_.empty() && "ExchangeHalo requires n >= npes");
    const bool has_left = dist_.begin() > 0;
    const bool has_right = dist_.end() < dist_.global_size();
    const T* first = data_.empty() ? nullptr : &data_.front();
    const T* last = data_.empty() ? nullptr : &data_.back();
    detail::HaloExchange(first, last, &left_ghost_, &right_ghost_,
                         sizeof(T), has_left, has_right);
  }

  const T& left_ghost() const { return left_ghost_; }
  const T& right_ghost() const { return right_ghost_; }

  /// [collective] Gather the whole array on PE 0; returns the full array
  /// there (empty elsewhere).
  std::vector<T> Gather() {
    std::vector<char> bytes;
    const bool root = detail::GatherToRoot(
        data_.data(), data_.size() * sizeof(T), &bytes);
    std::vector<T> out;
    if (root) {
      out.resize(bytes.size() / sizeof(T));
      std::memcpy(out.data(), bytes.data(), bytes.size());
    }
    return out;
  }

 private:
  Distribution1D dist_;
  std::vector<T> data_;
  T left_ghost_{};
  T right_ghost_{};
};

}  // namespace converse::dp

// ---------------------------------------------------------------------------
// 2-D block-distributed arrays: the grid decomposition real data-parallel
// stencil codes use.  PEs form a Px × Py process grid (chosen as close to
// square as the PE count allows); each owns a contiguous tile.  Halo
// exchange fills one-deep ghost rows/columns from the four neighbors.
// ---------------------------------------------------------------------------

namespace converse::dp {

/// Near-square factorization of npes into Px*Py (Px >= Py).
struct ProcessGrid {
  int px = 1;
  int py = 1;
  static ProcessGrid For(int npes);
};

class Distribution2D {
 public:
  /// nx × ny global cells over a npes-PE grid; `pe` is this PE.
  Distribution2D(std::size_t nx, std::size_t ny, int npes, int pe);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  const ProcessGrid& grid() const { return grid_; }
  int pe_x() const { return pe_x_; }  // my coordinates in the process grid
  int pe_y() const { return pe_y_; }
  std::size_t x_begin() const { return x_begin_; }
  std::size_t x_end() const { return x_end_; }
  std::size_t y_begin() const { return y_begin_; }
  std::size_t y_end() const { return y_end_; }
  std::size_t local_nx() const { return x_end_ - x_begin_; }
  std::size_t local_ny() const { return y_end_ - y_begin_; }

  /// PE owning global cell (x, y).
  int Owner(std::size_t x, std::size_t y) const;
  /// Neighbor PE in the process grid (-1 at the boundary).
  int NeighborPe(int dx, int dy) const;

 private:
  std::size_t nx_, ny_;
  ProcessGrid grid_;
  int pe_x_, pe_y_;
  std::size_t x_begin_, x_end_, y_begin_, y_end_;
};

namespace detail {
/// Blocking 4-neighbor halo exchange of one-deep ghost rows/columns.
/// Buffers are elem_size * count bytes; null neighbor => skipped.
void HaloExchange2D(const Distribution2D& dist, std::size_t elem_size,
                    const void* send_left, const void* send_right,
                    const void* send_down, const void* send_up,
                    void* recv_left, void* recv_right, void* recv_down,
                    void* recv_up);
}  // namespace detail

/// A 2-D block-distributed array of trivially copyable T with one-deep
/// ghost borders.  All [collective] methods must run on every PE.
template <typename T>
class Array2D {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// [collective]
  Array2D(std::size_t nx, std::size_t ny, int npes, int pe)
      : dist_(nx, ny, npes, pe),
        data_(dist_.local_nx() * dist_.local_ny()),
        ghost_left_(dist_.local_ny()),
        ghost_right_(dist_.local_ny()),
        ghost_down_(dist_.local_nx()),
        ghost_up_(dist_.local_nx()) {}

  const Distribution2D& dist() const { return dist_; }

  /// Local element by *global* coordinates (must be owned here).
  T& At(std::size_t x, std::size_t y) {
    assert(x >= dist_.x_begin() && x < dist_.x_end());
    assert(y >= dist_.y_begin() && y < dist_.y_end());
    return data_[(y - dist_.y_begin()) * dist_.local_nx() +
                 (x - dist_.x_begin())];
  }

  /// Apply fn(x, y, element) to every local element.
  void ForEach(const std::function<void(std::size_t, std::size_t, T&)>& fn) {
    for (std::size_t y = dist_.y_begin(); y < dist_.y_end(); ++y) {
      for (std::size_t x = dist_.x_begin(); x < dist_.x_end(); ++x) {
        fn(x, y, At(x, y));
      }
    }
  }

  /// Neighbor value of (x, y) in direction (dx, dy) with |dx|+|dy| == 1;
  /// reads ghosts across tile borders.  Caller guarantees the neighbor
  /// exists globally.
  const T& Neighbor(std::size_t x, std::size_t y, int dx, int dy) {
    const std::size_t nx = x + static_cast<std::size_t>(dx);
    const std::size_t ny2 = y + static_cast<std::size_t>(dy);
    if (nx < dist_.x_begin()) return ghost_left_[ny2 - dist_.y_begin()];
    if (nx >= dist_.x_end()) return ghost_right_[ny2 - dist_.y_begin()];
    if (ny2 < dist_.y_begin()) return ghost_down_[nx - dist_.x_begin()];
    if (ny2 >= dist_.y_end()) return ghost_up_[nx - dist_.x_begin()];
    return At(nx, ny2);
  }

  /// [collective] Fill the four ghost borders from the neighbors.
  void ExchangeHalo() {
    const std::size_t lx = dist_.local_nx();
    const std::size_t ly = dist_.local_ny();
    assert(lx > 0 && ly > 0 && "ExchangeHalo requires a nonempty tile");
    // Column copies (left/right borders are strided).
    std::vector<T> left_col(ly), right_col(ly);
    for (std::size_t j = 0; j < ly; ++j) {
      left_col[j] = data_[j * lx];
      right_col[j] = data_[j * lx + lx - 1];
    }
    detail::HaloExchange2D(
        dist_, sizeof(T), left_col.data(), right_col.data(),
        data_.data(),                       // bottom row
        data_.data() + (ly - 1) * lx,       // top row
        ghost_left_.data(), ghost_right_.data(), ghost_down_.data(),
        ghost_up_.data());
  }

  /// [collective] Global sum of fn(x, y, element).
  double ReduceSum(
      const std::function<double(std::size_t, std::size_t, const T&)>& fn) {
    double acc = 0;
    ForEach([&](std::size_t x, std::size_t y, T& v) { acc += fn(x, y, v); });
    return CmiAllReduceF64(acc, CmiReducerSumF64());
  }

 private:
  Distribution2D dist_;
  std::vector<T> data_;
  std::vector<T> ghost_left_, ghost_right_, ghost_down_, ghost_up_;
};

}  // namespace converse::dp
