// tSM — the threaded simple-messaging package (paper §3.2.2): the
// two-call interface the paper uses to illustrate how a language runtime
// composes the thread object, the message manager, and the Converse
// scheduler without exposing any of them to its users.
//
//   tSMCreate():  create a new thread and schedule it for execution via
//                 the Converse scheduler.
//   tSMReceive(): block the calling thread waiting for a particular
//                 (tagged) message.
//
// Messages are addressed to (PE, tag); any tSM thread on that PE waiting
// for the tag receives it.  Built entirely on the SM layer's thread-aware
// receive path — the low-level thread-object calls are not exposed.
#pragma once

#include <cstddef>
#include <functional>

namespace converse::tsm {

struct CthThreadHandle;  // intentionally opaque: tSM users never touch Cth

/// Create a thread running `fn` and schedule it (paper's tSMCreate).
void tSMCreate(std::function<void()> fn);

/// Send `len` bytes to PE `dest_pe` under `tag`.
void tSMSend(int dest_pe, int tag, const void* data, std::size_t len);

/// Block the calling tSM thread until a message with `tag` arrives; copies
/// at most `maxlen` bytes and returns the full length (paper's
/// tSMReceive).  Must be called from a tSM thread.
int tSMReceive(int tag, void* buf, std::size_t maxlen,
               int* retsource = nullptr);

/// Nonblocking probe for a buffered message with `tag` (-1 if none).
int tSMProbe(int tag);

/// Number of tSM threads alive on this PE.
int tSMLiveThreads();

}  // namespace converse::tsm
