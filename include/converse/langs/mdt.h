// mdt — the small "coordination language" of paper §4: message-driven
// threads.
//
// "Threads can be dynamically created and can send messages with a single
// tag to other threads. Individual threads can block for a specific
// message (with a particular tag) and must be continued when the message
// is received.  By using the facilities [of] the message manager and
// thread object, as well as the Converse scheduler, one of us was able to
// implement this language in about a day's time.  The entire runtime ...
// consists of about 100 lines of C code."
//
// This implementation composes exactly those three components (Cmm, Cth,
// Csd) — plus the seed balancer for placement of anonymous spawns — and is
// itself only a couple hundred lines; counting it is one of the paper's
// qualitative claims (see bench/mdt_language).
//
// Thread ids: (pe << 32) | local index, assigned on the PE where the
// thread takes root.  A spawned thread learns who created it from its
// argument, so handles flow through messages in the usual message-driven
// style; MdtSpawnLocal returns the id synchronously for local threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace converse::mdt {

using MdtThreadId = std::uint64_t;

inline constexpr MdtThreadId kNoThread = 0;
inline int MdtPeOf(MdtThreadId tid) { return static_cast<int>(tid >> 32); }

/// Thread body: receives the spawn argument bytes.
using MdtFn = std::function<void(const void* arg, std::size_t len)>;

/// Register a thread body; must be registered in the same order on every
/// PE (same contract as handlers).  Returns the function index used by
/// MdtSpawn.
int MdtRegister(MdtFn fn);

/// Spawn a thread running registered function `fn_idx` on `on_pe`
/// (kAnyPe = let the seed load balancer place it).  Fire-and-forget; the
/// child can report its MdtSelf() id back via the argument protocol.
inline constexpr int kAnyPe = -1;
void MdtSpawn(int fn_idx, const void* arg, std::size_t len,
              int on_pe = kAnyPe);

/// Spawn locally and return the new thread's id immediately.
MdtThreadId MdtSpawnLocal(int fn_idx, const void* arg, std::size_t len);

/// Send `len` bytes with `tag` to thread `to`.
void MdtSend(MdtThreadId to, int tag, const void* data, std::size_t len);

/// Block the calling mdt thread until a message with `tag` arrives for it;
/// copies at most `maxlen` bytes, returns the full length.
int MdtRecv(int tag, void* buf, std::size_t maxlen);

/// Id of the calling mdt thread.
MdtThreadId MdtSelf();

/// Number of live mdt threads on this PE.
int MdtLiveThreads();

}  // namespace converse::mdt

// -- module registration anchor ------------------------------------------------
// Including this header registers the module's per-PE init hook during
// static initialization, so handler indices are identical on every PE of
// any machine started afterwards (see converse/detail/module.h).  The
// anonymous-namespace anchor is deliberate: one idempotent call per TU.
namespace converse::detail {
int MdtModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int mdt_module_anchor = converse::detail::MdtModuleRegister();
}  // namespace
