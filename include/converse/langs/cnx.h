// cnx — an NX-style (Intel iPSC/Paragon "NXLib") messaging runtime on
// Converse (paper §1: "Our initial implementation includes ... NXLib";
// supported in SPMD and multithreaded modes).
//
// The NX flavor differs from PVM's: typed untagged-buffer sends
// (csend/crecv with a message "type" selector), posted asynchronous
// receives (irecv + msgwait/msgdone), and info*() accessors describing the
// last completed receive.
#pragma once

#include <cstddef>

namespace converse::nx {

/// Matches any message type in crecv/irecv/iprobe.
inline constexpr long kAnyType = -1;

int mynode();
int numnodes();

/// Synchronous typed send of `len` bytes to `node`.
void csend(long type, const void* buf, std::size_t len, int node);

/// Blocking typed receive into buf (at most `len` bytes).  SPM semantics
/// from the main context, thread-blocking from a Cth thread.  Updates the
/// info*() values.
void crecv(long typesel, void* buf, std::size_t len);

/// Post an asynchronous receive; returns a message id.
long irecv(long typesel, void* buf, std::size_t len);

/// Nonblocking completion test for a posted receive.
int msgdone(long mid);

/// Block until the posted receive completes (SPM-style wait).
void msgwait(long mid);

/// Nonblocking probe: 1 if a message matching typesel is buffered.
int iprobe(long typesel);

/// Properties of the last completed (crecv/msgwait-ed) receive.
long infocount();  // bytes
long infotype();
long infonode();

}  // namespace converse::nx

// -- module registration anchor ------------------------------------------------
// Including this header registers the module's per-PE init hook during
// static initialization, so handler indices are identical on every PE of
// any machine started afterwards (see converse/detail/module.h).  The
// anonymous-namespace anchor is deliberate: one idempotent call per TU.
namespace converse::detail {
int NxModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int nx_module_anchor = converse::detail::NxModuleRegister();
}  // namespace
