// cmpi — an MPI-style message layer on the Converse MMI.
//
// Paper §3.1.3: "MPI provides a 'receive' call based on context, tag and
// source processor. It also guarantees that messages are delivered in the
// sequence in which they are sent between a pair of processors. The
// overhead of maintaining messages indexed for such retrieval or for
// maintaining delivery sequence is unnecessary for many applications. The
// interface we propose ... is minimal, yet it is possible to provide an
// efficient MPI-style retrieval on top of this interface."
//
// This module is that claim, implemented: a communicator-scoped,
// (source, tag)-matched, pairwise-FIFO message layer built entirely on
// public Converse facilities (handlers, Cmm, Cth, collectives).  Its
// retrieval overhead relative to raw handlers is quantified by
// bench/cmpi_vs_raw — the need-based-cost argument in one number.
//
// Blocking calls follow the usual Converse dual regime: SPM-style from
// the PE main context, thread-suspending from a Cth thread.
#pragma once

#include <cstddef>
#include <cstdint>

namespace converse::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Communicator handle. kCommWorld always exists; Split creates more.
using Comm = int;
inline constexpr Comm kCommWorld = 0;

struct Status {
  int source = -1;
  int tag = -1;
  int count = 0;  // bytes
};

struct Request;  // opaque

int CommRank(Comm comm);
int CommSize(Comm comm);

/// Create a communicator containing every PE (collective over all PEs;
/// all must call it in the same order).  Rank order == PE order.
/// (A full color/key split is out of scope; dup covers the context-
/// separation property MPI communicators exist for.)
Comm CommDup(Comm comm);

/// Blocking standard send (buffered: returns once the payload is copied).
void Send(const void* buf, std::size_t len, int dest_rank, int tag,
          Comm comm);

/// Blocking receive matching (source, tag) within `comm`; wildcards
/// kAnySource/kAnyTag.  Copies at most `maxlen` bytes; the full length
/// and actual envelope are reported through `status` (optional).
void Recv(void* buf, std::size_t maxlen, int source_rank, int tag,
          Comm comm, Status* status = nullptr);

/// Nonblocking probe: true if a matching message is already retrievable
/// (buffered locally); fills `status` when provided.
bool IProbe(int source_rank, int tag, Comm comm, Status* status = nullptr);

/// Nonblocking receive: returns a request completed when a matching
/// message has been delivered into `buf`.
Request* IRecv(void* buf, std::size_t maxlen, int source_rank, int tag,
               Comm comm);

/// True once the request completed; fills `status` when provided.
bool Test(Request* req, Status* status = nullptr);

/// Block until the request completes, then release it.
void Wait(Request* req, Status* status = nullptr);

/// Combined send+receive (deadlock-free regardless of ordering).
void Sendrecv(const void* sendbuf, std::size_t sendlen, int dest, int stag,
              void* recvbuf, std::size_t recvlen, int source, int rtag,
              Comm comm, Status* status = nullptr);

// ---- Collectives (thin veneers over the Converse collectives) -------------

void Barrier(Comm comm);
/// Broadcast `len` bytes from rank `root` to all ranks.
void Bcast(void* buf, std::size_t len, int root, Comm comm);
/// All-reduce of doubles / int64s with the named op.
enum class Op { kSum, kMin, kMax };
void AllreduceF64(const double* in, double* out, std::size_t n, Op op,
                  Comm comm);
void AllreduceI64(const std::int64_t* in, std::int64_t* out, std::size_t n,
                  Op op, Comm comm);

/// Diagnostics: messages buffered and not yet received on this PE.
std::size_t UnexpectedCount();

}  // namespace converse::mpi

// -- module registration anchor ------------------------------------------------
namespace converse::detail {
int MpiModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int mpi_module_anchor =
    converse::detail::MpiModuleRegister();
}  // namespace
