// charm — a Charm-style message-driven concurrent object runtime on
// Converse (paper §1: "The Charm runtime system itself has been retargeted
// for Converse"; §2.1 "message-driven objects"; §3.3 language runtimes).
//
// Chares are objects created dynamically anywhere in the machine (seed
// load balancing decides placement for anonymous creations, §3.3.1);
// methods are invoked asynchronously by messages.  Every chare message
// goes through the scheduler queue — this is the per-message scheduling
// cost that the paper's Figure 6 isolates and that only queue-using
// languages pay — using exactly the "second handler" idiom of §3.3: the
// network handler grabs the buffer, retargets it to a queued handler, and
// enqueues (optionally with a priority).
//
// Also provided, because Charm programs need them: branch-office (group)
// chares with one branch per PE, broadcast to groups, read-only data, and
// quiescence detection over the machine spanning tree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace converse::charm {

struct ChareId {
  std::int32_t pe = -1;
  std::uint32_t idx = 0;
  bool IsValid() const { return pe >= 0; }
  friend bool operator==(const ChareId&, const ChareId&) = default;
};

/// Base class for all chares.
class Chare {
 public:
  virtual ~Chare() = default;
  /// This chare's global id (valid from construction onward).
  ChareId thisChare() const { return id_; }

 private:
  friend struct ChareRuntimeAccess;
  ChareId id_;
};

/// Constructs a chare from its creation argument bytes.
using ChareFactory = std::function<Chare*(const void* arg, std::size_t len)>;
/// An entry method: invoked with the message payload.
using EntryFn = std::function<void(Chare*, const void* data, std::size_t len)>;

/// Register a chare type / an entry method.  Same cross-PE ordering
/// contract as handlers (register in the entry function on every PE).
int RegisterChare(const char* name, ChareFactory factory);
int RegisterEntry(EntryFn fn);

/// Typed helpers: T must be constructible from (const void*, std::size_t).
template <typename T>
int RegisterChareType(const char* name) {
  return RegisterChare(name, [](const void* a, std::size_t l) -> Chare* {
    return new T(a, l);
  });
}
template <typename T>
int RegisterEntryMethod(void (T::*mf)(const void*, std::size_t)) {
  return RegisterEntry([mf](Chare* c, const void* d, std::size_t l) {
    (static_cast<T*>(c)->*mf)(d, l);
  });
}

/// Create a chare of `chare_type` with argument bytes.  kAnyPe lets the
/// seed load balancer place it ("the seeds ... float around the system
/// until they take root", §3.3.1); otherwise it is created on `on_pe`.
/// Fire-and-forget: the new chare learns its creator from the argument.
inline constexpr int kAnyPe = -1;
void CreateChare(int chare_type, const void* arg, std::size_t len,
                 int on_pe = kAnyPe);

/// Asynchronously invoke entry `entry` on `target` with the given payload.
void SendToChare(ChareId target, int entry, const void* data,
                 std::size_t len);

/// Prioritized invocation (integer priority, smaller first — §2.3).
void SendToCharePrio(ChareId target, int entry, const void* data,
                     std::size_t len, std::int32_t prio);

/// Bit-vector-prioritized invocation (for search codes, §2.3).
void SendToChareBitvecPrio(ChareId target, int entry, const void* data,
                           std::size_t len, const std::uint32_t* prio_words,
                           int nbits);

/// Destroy a chare (asynchronously; subsequent sends to it are an error).
void DestroyChare(ChareId target);

/// Id of the chare whose entry method is currently running (invalid id if
/// none).
ChareId CkMyChareId();

// ---- Branch-office (group) chares -------------------------------------------

/// Create a group: one branch of `chare_type` per PE.  Returns the group
/// id immediately; construction is asynchronous, and messages to
/// not-yet-constructed branches are buffered.
int CreateGroup(int chare_type, const void* arg, std::size_t len);

/// Invoke `entry` on the branch of `gid` on `pe`.
void SendToBranch(int gid, int pe, int entry, const void* data,
                  std::size_t len);

/// Invoke `entry` on every branch of `gid` (including the local one).
void BroadcastToGroup(int gid, int entry, const void* data, std::size_t len);

/// The local branch, or nullptr if not yet constructed.
Chare* LocalBranch(int gid);

// ---- Read-only data -----------------------------------------------------------

/// Broadcast a read-only blob under `key` to all PEs (call once, from one
/// PE, before dependents run — typically from PE 0 at startup).
void ReadonlySet(int key, const void* data, std::size_t len);

/// Local copy of the blob (empty if not yet arrived).
const std::vector<char>& ReadonlyGet(int key);

// ---- Quiescence detection ------------------------------------------------------

/// Invoke `cb` on the calling PE once no charm messages are in flight or
/// being created anywhere (two-wave stable-count detection over the
/// machine spanning tree).
void StartQuiescence(std::function<void()> cb);

// ---- Diagnostics ---------------------------------------------------------------

std::uint64_t CharmMsgsCreated();    // this PE
std::uint64_t CharmMsgsProcessed();  // this PE
int CharmLocalChares();              // live chares on this PE

}  // namespace converse::charm

// -- module registration anchor ------------------------------------------------
// Including this header registers the module's per-PE init hook during
// static initialization, so handler indices are identical on every PE of
// any machine started afterwards (see converse/detail/module.h).  The
// anonymous-namespace anchor is deliberate: one idempotent call per TU.
namespace converse::detail {
int CharmModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int charm_module_anchor = converse::detail::CharmModuleRegister();
}  // namespace

// ---------------------------------------------------------------------------
// Chare arrays — the collection abstraction of the Charm lineage: N
// elements indexed 0..n-1, placed round-robin across PEs, each an object
// with entry methods, plus array-wide broadcast and reduction.  Built on
// the same machinery as chares and groups (and counted by quiescence
// detection).  Element factories receive (index, arg, len).
// ---------------------------------------------------------------------------

namespace converse::charm {

/// Base class for array elements.
class ArrayElement : public Chare {
 public:
  int ArrayId() const { return array_id_; }
  int Index() const { return index_; }

 private:
  friend struct ArrayRuntimeAccess;
  int array_id_ = -1;
  int index_ = -1;
  std::uint64_t reduction_round_ = 0;  // rounds this element contributed to
};

/// Constructs one element: (element index, creation arg bytes).
using ArrayFactory =
    std::function<ArrayElement*(int index, const void* arg, std::size_t len)>;

/// Register an array element type (same cross-PE ordering contract).
int RegisterArrayType(const char* name, ArrayFactory factory);

/// Typed helper: T must be constructible from (int, const void*, size_t).
template <typename T>
int RegisterArrayElementType(const char* name) {
  return RegisterArrayType(
      name, [](int idx, const void* a, std::size_t l) -> ArrayElement* {
        return new T(idx, a, l);
      });
}

/// Collectively create an array of `nelems` elements of `array_type`
/// (placed index % npes).  Callable from one PE; returns the array id
/// immediately, construction is asynchronous (messages are buffered).
int CreateArray(int array_type, int nelems, const void* arg,
                std::size_t len);

/// Invoke `entry` (a RegisterEntry id) on element `idx` of array `aid`.
void SendToElement(int aid, int idx, int entry, const void* data,
                   std::size_t len);

/// Invoke `entry` on every element of the array.
void BroadcastToArray(int aid, int entry, const void* data, std::size_t len);

/// Contribute `size` bytes on behalf of `elem` to its array's reduction
/// (each element exactly once per round; rounds are tracked per element,
/// so an element may contribute to round k+1 before its siblings finish
/// round k).  When every element has contributed to a round, the combined
/// result is delivered as a message payload to `client_handler` (a
/// CmiRegisterHandler id) on PE 0.  `reducer` is a CmiRegisterReducer /
/// built-in reducer id.
void ArrayContribute(ArrayElement* elem, const void* data, std::size_t size,
                     int reducer, int client_handler);

/// Local elements of `aid` on this PE (diagnostics).
int ArrayLocalElements(int aid);

}  // namespace converse::charm

// -- chare-array module registration anchor -------------------------------------
namespace converse::detail {
int CharmArrayModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int charm_array_module_anchor =
    converse::detail::CharmArrayModuleRegister();
}  // namespace
