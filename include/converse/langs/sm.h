// SM — the "simple messaging layer" of the paper's initial implementation
// (§1, §5): tagged sends and receives for SPMD modules.
//
// Dual control regime (paper §2):
//  * Called from the PE's main context, SmRecv blocks SPM-style — it
//    receives only SM traffic through CmiGetSpecificMsg, buffering nothing
//    but SM messages, so no other user code runs while it waits.
//  * Called from a Cth thread, SmRecv suspends the thread and lets the
//    scheduler run other work — the implicit control regime.  This is the
//    same source-compatible promotion the paper describes for PVM/NXLib
//    ("supported both in SPMD as well as multithreaded mode").
#pragma once

#include <cstddef>

namespace converse::sm {

inline constexpr int kAnyTag = -1;
inline constexpr int kAnySource = -1;

/// Send `len` bytes to `dest_pe` with `tag`.
void SmSend(int dest_pe, int tag, const void* data, std::size_t len);

/// Send to every PE (including the caller) with `tag`.
void SmBroadcastAll(int tag, const void* data, std::size_t len);

/// Blocking receive: waits for a message matching (tag, source), copies at
/// most `maxlen` bytes into `buf`, and returns the full message length.
/// Wildcards: kAnyTag / kAnySource.  Actual tag/source are returned via
/// the optional out-parameters.
int SmRecv(void* buf, std::size_t maxlen, int tag = kAnyTag,
           int source = kAnySource, int* rettag = nullptr,
           int* retsource = nullptr);

/// Nonblocking probe: length of the first matching buffered message, or -1.
/// (Does not poke the network; pair with CsdSchedulePoll or SmRecv.)
int SmProbe(int tag = kAnyTag, int source = kAnySource);

/// Number of SM messages buffered and not yet received on this PE.
std::size_t SmPending();

}  // namespace converse::sm

// -- module registration anchor ------------------------------------------------
// Including this header registers the module's per-PE init hook during
// static initialization, so handler indices are identical on every PE of
// any machine started afterwards (see converse/detail/module.h).  The
// anonymous-namespace anchor is deliberate: one idempotent call per TU.
namespace converse::detail {
int SmModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int sm_module_anchor = converse::detail::SmModuleRegister();
}  // namespace
