// K-ary spanning tree over a contiguous PE range, rooted anywhere.
//
// The machine layer "is knowledgeable about topology ... best able to
// optimize group operations" (paper §3.1.3/EMI); on the in-process machine a
// k-ary tree over PE numbers is the canonical shape.  These helpers are pure
// arithmetic, shared by broadcasts, reductions, processor groups, and
// quiescence detection.
#pragma once

#include <vector>

namespace converse::util {

/// A k-ary spanning tree over PEs {0..npes-1} rooted at `root`.
/// The tree is defined on "virtual ranks" r = (pe - root + npes) % npes so
/// that any root yields the same shape.
class SpanningTree {
 public:
  SpanningTree(int npes, int root = 0, int branching = 4);

  int npes() const { return npes_; }
  int root() const { return root_; }
  int branching() const { return branching_; }

  /// Parent of `pe` in the tree; -1 for the root.
  int Parent(int pe) const;

  /// Children of `pe`, in increasing virtual-rank order.
  std::vector<int> Children(int pe) const;

  int NumChildren(int pe) const;

  /// Number of PEs in the subtree rooted at `pe` (including `pe` itself).
  /// SubtreeSize(root()) == npes().
  int SubtreeSize(int pe) const;

  /// Depth of `pe` (root has depth 0).
  int Depth(int pe) const;

 private:
  int ToRank(int pe) const { return (pe - root_ + npes_) % npes_; }
  int ToPe(int rank) const { return (rank + root_) % npes_; }

  int npes_;
  int root_;
  int branching_;
};

}  // namespace converse::util
