// Monotonic wall-clock helpers. CmiTimer() in the public API is defined as
// seconds since machine start with at least microsecond accuracy (paper,
// appendix 3.2); these are the primitives behind it.
#pragma once

#include <chrono>
#include <cstdint>

namespace converse::util {

using Clock = std::chrono::steady_clock;

/// Nanoseconds since an arbitrary (but fixed) epoch.
inline std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Microseconds since an arbitrary epoch, as a double (fractional µs kept).
inline double NowUs() { return static_cast<double>(NowNs()) * 1e-3; }

/// Seconds elapsed since `start_ns` (a value previously returned by NowNs).
inline double SecondsSince(std::int64_t start_ns) {
  return static_cast<double>(NowNs() - start_ns) * 1e-9;
}

}  // namespace converse::util
