// Lightweight accumulators used by the trace module and by the benchmark
// harness (min/mean/max/stddev + percentiles over retained samples).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace converse::util {

/// Streaming moments (Welford). O(1) memory; no percentiles.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  std::size_t Count() const { return n_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  double Min() const;
  double Max() const;
  double Variance() const;
  double Stddev() const;
  double Sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Sample-retaining accumulator for percentile reporting in benches.
class SampleStats {
 public:
  explicit SampleStats(std::size_t reserve = 0) { samples_.reserve(reserve); }

  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
    moments_.Add(x);
  }
  const RunningStats& Moments() const { return moments_; }

  /// Percentile in [0,100]; interpolates between order statistics.
  /// Returns 0 for an empty sample set.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  std::size_t Count() const { return samples_.size(); }
  void Clear() {
    samples_.clear();
    moments_ = RunningStats{};
  }

 private:
  mutable std::vector<double> samples_;  // sorted lazily by Percentile()
  mutable bool sorted_ = false;
  RunningStats moments_;
};

}  // namespace converse::util
