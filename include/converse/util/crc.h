// CRC-32C (Castagnoli) — software table implementation.
//
// Used by tests and the trace module to fingerprint message payloads so
// corruption across the machine layer is detectable.
#pragma once

#include <cstddef>
#include <cstdint>

namespace converse::util {

/// CRC-32C of `n` bytes starting at `data`, continuing from `seed`
/// (pass 0 for a fresh checksum).
std::uint32_t Crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace converse::util
