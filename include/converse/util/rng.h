// Small, fast, deterministic PRNGs used throughout the runtime.
//
// The runtime must not depend on <random> engines for reproducibility of
// tests across standard-library versions, and the seed load balancer needs a
// generator cheap enough to call on the message fast path.
#pragma once

#include <cstdint>

namespace converse::util {

/// SplitMix64: used to expand a single seed into stream seeds.
/// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the general-purpose generator for the runtime (per-PE
/// instances; never shared across threads).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method; the slight modulo bias of the
    // plain multiply-shift is acceptable for load balancing but not for
    // tests, so do the rejection step properly.
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace converse::util
