// Byte-oriented pack/unpack buffers.
//
// Converse messages are raw byte blocks; client runtimes (notably the
// PVM-style layer's pvm_pk*/pvm_upk* and the Charm-style parameter
// marshalling) need a safe way to serialize typed data into them.  The
// Packer grows a byte vector; the Unpacker bounds-checks every read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace converse::util {

/// Thrown by Unpacker on out-of-bounds or type-tag mismatch.
class PackError : public std::runtime_error {
 public:
  explicit PackError(const std::string& what) : std::runtime_error(what) {}
};

class Packer {
 public:
  Packer() = default;
  explicit Packer(std::size_t reserve) { buf_.reserve(reserve); }

  template <typename T>
  void Put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Packer::Put requires a trivially copyable type");
    PutBytes(&v, sizeof(T));
  }

  template <typename T>
  void PutArray(const T* data, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    Put(static_cast<std::uint64_t>(n));
    PutBytes(data, n * sizeof(T));
  }

  void PutString(const std::string& s) {
    PutArray(s.data(), s.size());
  }

  void PutBytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::byte* data() const { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }
  std::vector<std::byte> Take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class Unpacker {
 public:
  Unpacker(const void* data, std::size_t size)
      : base_(static_cast<const std::byte*>(data)), size_(size) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    GetBytes(&out, sizeof(T));
    return out;
  }

  template <typename T>
  std::vector<T> GetArray() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = Get<std::uint64_t>();
    if (n > (size_ - pos_) / sizeof(T)) {
      throw PackError("Unpacker: array length exceeds remaining bytes");
    }
    std::vector<T> out(static_cast<std::size_t>(n));
    GetBytes(out.data(), out.size() * sizeof(T));
    return out;
  }

  std::string GetString() {
    auto chars = GetArray<char>();
    return std::string(chars.begin(), chars.end());
  }

  void GetBytes(void* out, std::size_t n) {
    if (n > size_ - pos_) {
      throw PackError("Unpacker: read past end of buffer");
    }
    std::memcpy(out, base_ + pos_, n);
    pos_ += n;
  }

  std::size_t Remaining() const { return size_ - pos_; }
  std::size_t Position() const { return pos_; }

 private:
  const std::byte* base_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace converse::util
