// Log-bucketed (HDR-style) latency histogram.
//
// Values are non-negative integers (the service layer records nanoseconds).
// Below 2^sub_bits every value has its own bucket (exact); above that, each
// power-of-two octave is split into 2^sub_bits equal sub-buckets, so the
// relative quantile error is bounded by 2^-sub_bits everywhere (1.6% at the
// default sub_bits = 6) while the whole 64-bit range fits in a few thousand
// counters.  Count, sum, min and max are tracked exactly on the side, so
// Min()/Max()/Mean() carry no bucketing error at all.
//
// Histograms with equal sub_bits merge by adding counters — merging is
// associative and commutative (tests/test_histogram.cpp pins the
// order-insensitivity), which is what makes per-PE recording + one merge at
// the end correct.  No locking: each instance is single-writer (one PE);
// merge after the machine joins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace converse::util {

class LogHistogram {
 public:
  static constexpr unsigned kDefaultSubBits = 6;

  explicit LogHistogram(unsigned sub_bits = kDefaultSubBits);

  /// Add one observation.
  void Record(std::uint64_t value) { RecordN(value, 1); }
  /// Add `n` observations of the same value.
  void RecordN(std::uint64_t value, std::uint64_t n);

  /// Fold another histogram (same sub_bits) into this one.
  void Merge(const LogHistogram& other);

  /// Value at quantile q in [0, 1]: the upper bound of the first bucket
  /// whose cumulative count reaches rank ceil(q * Count()) (at least 1).
  /// Exact for values below 2^sub_bits; otherwise overestimates by less
  /// than one part in 2^sub_bits.  Returns 0 on an empty histogram;
  /// q >= 1 returns the exact Max().
  std::uint64_t Quantile(double q) const;

  std::uint64_t Count() const { return count_; }
  std::uint64_t Sum() const { return sum_; }
  /// Exact extrema of everything recorded (0 when empty).
  std::uint64_t Min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t Max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;

  void Clear();

  unsigned sub_bits() const { return sub_bits_; }
  std::size_t num_buckets() const { return buckets_.size(); }

  // Bucket geometry, exposed so tests can state the "within one bucket"
  // property without duplicating the index math.
  std::size_t BucketIndex(std::uint64_t value) const;
  std::uint64_t BucketLower(std::size_t index) const;
  std::uint64_t BucketUpper(std::size_t index) const;

 private:
  unsigned sub_bits_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::vector<std::uint64_t> buckets_;
};

}  // namespace converse::util
