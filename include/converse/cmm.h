// Message managers (paper §3.2.1, appendix §4).
//
// A message manager is an indexed mailbox: a container for messages that
// are yet to be processed, retrievable by one or two integer tags with
// wildcarding.  Threaded languages (tSM, the PVM layer in threaded mode)
// and SPM languages both build their receive-by-tag semantics on it.
// Retrieval among equally-matching messages is FIFO.
//
// A message manager is PE-local and not thread-safe across PEs (like every
// Converse structure, it is manipulated only by code running on its PE).
#pragma once

#include <cstddef>

namespace converse {

struct MSG_MNGR;  // opaque

/// Wildcard value for tag parameters of probe/get calls.
inline constexpr int CmmWildCard = -1;

/// Create a new, empty message manager.
MSG_MNGR* CmmNew();

/// Destroy a message manager and free all messages still stored in it.
void CmmFree(MSG_MNGR* mm);

/// Store `msg` (a copy of `size` bytes is taken) under one or two tags.
void CmmPut(MSG_MNGR* mm, const void* msg, int tag, int size);
void CmmPut2(MSG_MNGR* mm, const void* msg, int tag1, int tag2, int size);

/// Size of the first message matching the tag(s), or -1 if none.  The
/// actual tag values of the matched message are returned through the
/// non-null rettag pointers.
int CmmProbe(MSG_MNGR* mm, int tag, int* rettag);
int CmmProbe2(MSG_MNGR* mm, int tag1, int tag2, int* rettag1, int* rettag2);

/// Copy at most `size` bytes of the first matching message into `addr`,
/// remove it from the manager, and return its full length (-1 if none).
int CmmGet(MSG_MNGR* mm, void* addr, int tag, int size, int* rettag);
int CmmGet2(MSG_MNGR* mm, void* addr, int tag1, int tag2, int size,
            int* rettag1, int* rettag2);

/// Remove the first matching message, returning a freshly allocated buffer
/// holding it through `*addr` (caller frees with `delete[]
/// static_cast<char*>(*addr)`).  Returns the length, or -1 if none (in
/// which case *addr is untouched).
int CmmGetPtr(MSG_MNGR* mm, void** addr, int tag, int* rettag);
int CmmGetPtr2(MSG_MNGR* mm, void** addr, int tag1, int tag2, int* rettag1,
               int* rettag2);

/// Number of messages currently stored.
std::size_t CmmLength(const MSG_MNGR* mm);

/// RAII convenience wrapper.
class MessageManager {
 public:
  MessageManager() : mm_(CmmNew()) {}
  ~MessageManager() { CmmFree(mm_); }
  MessageManager(const MessageManager&) = delete;
  MessageManager& operator=(const MessageManager&) = delete;

  MSG_MNGR* get() const { return mm_; }

  void Put(const void* msg, int tag, int size) { CmmPut(mm_, msg, tag, size); }
  void Put2(const void* msg, int tag1, int tag2, int size) {
    CmmPut2(mm_, msg, tag1, tag2, size);
  }
  int Probe(int tag, int* rettag = nullptr) {
    return CmmProbe(mm_, tag, rettag);
  }
  int Get(void* addr, int tag, int size, int* rettag = nullptr) {
    return CmmGet(mm_, addr, tag, size, rettag);
  }
  std::size_t Length() const { return CmmLength(mm_); }

 private:
  MSG_MNGR* mm_;
};

}  // namespace converse
