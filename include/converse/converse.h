// Umbrella header for the Converse framework.
//
// Converse (Kale, Bhandarkar, Jagathesan, Krishnan — IPPS 1996) is an
// interoperable runtime framework on which modules written in different
// parallel paradigms — single-process (SPMD) modules, message-driven
// objects, and threads — coexist in one program under a unified scheduler,
// paying only for the features they use.
//
// Language runtimes built on this core live under converse/langs/ and are
// included separately by the programs that use them (pay-for-what-you-use
// extends to link time: an unreferenced runtime costs nothing).
#pragma once

#include "converse/cld.h"
#include "converse/cmi.h"
#include "converse/cmm.h"
#include "converse/collectives.h"
#include "converse/csd.h"
#include "converse/cth.h"
#include "converse/cts.h"
#include "converse/emi.h"
#include "converse/gptr.h"
#include "converse/handlers.h"
#include "converse/machine.h"
#include "converse/msg.h"
#include "converse/netmodel.h"
#include "converse/pgrp.h"
#include "converse/queueing.h"
#include "converse/race.h"
#include "converse/sim.h"
#include "converse/stream.h"
#include "converse/trace.h"
