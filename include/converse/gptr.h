// Global pointers and one-sided get/put (paper EMI, appendix §3.4).
//
// A global pointer is an opaque handle naming a region of memory on a
// particular PE.  Get/put operations are implemented with request/reply
// messages through the machine layer (as they are on machines without
// remote DMA), so they exercise the same code paths a distributed machine
// would.  Synchronous variants wait by receiving only gptr traffic
// (CmiGetSpecificMsg), preserving SPM "no side effects while blocked"
// semantics.
#pragma once

#include <cstddef>
#include <cstdint>

#include "converse/cmi.h"

namespace converse {

struct GlobalPtr {
  std::int32_t pe = -1;
  std::uint32_t size = 0;    // size of the registered region
  std::uint64_t addr = 0;    // address on the owning PE
};

/// Initialize *gptr to describe `size` bytes at `lptr` on the calling PE.
/// Returns a positive value on success.
int CmiGptrCreate(GlobalPtr* gptr, void* lptr, unsigned int size);

/// Local address behind a global pointer; only valid on the owning PE.
void* CmiGptrDref(GlobalPtr* gptr);

/// Blocking remote read: copy `size` bytes from *gptr into local `lptr`.
/// Returns a positive value on success.
int CmiSyncGet(const GlobalPtr* gptr, void* lptr, unsigned int size);

/// Blocking remote write: copy `size` bytes from local `lptr` to *gptr.
int CmiSyncPut(const GlobalPtr* gptr, const void* lptr, unsigned int size);

/// Asynchronous remote read; completion via CmiAsyncMsgSent(handle).
/// `lptr` must stay valid until completion.
CommHandle CmiGet(const GlobalPtr* gptr, void* lptr, unsigned int size);

/// Asynchronous remote write; `lptr` may be reused immediately (the data
/// is copied into the request message).
CommHandle CmiPut(const GlobalPtr* gptr, const void* lptr,
                  unsigned int size);

/// Wait (receiving only gptr traffic) until `handle` completes, then
/// release it.
void CmiWaitHandle(CommHandle handle);

}  // namespace converse

// -- module registration anchor ------------------------------------------------
// Including this header registers the module's per-PE init hook during
// static initialization, so handler indices are identical on every PE of
// any machine started afterwards (see converse/detail/module.h).  The
// anonymous-namespace anchor is deliberate: one idempotent call per TU.
namespace converse::detail {
int GptrModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int gptr_module_anchor = converse::detail::GptrModuleRegister();
}  // namespace
