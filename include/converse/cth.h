// Thread objects (paper §3.2.2, appendix §5).
//
// The thread object encapsulates exactly one capability — suspending and
// resuming a thread of control (stack + program counter) — and deliberately
// nothing else: scheduling is pluggable per thread via CthSetStrategy, so
// each language runtime can control the order in which *its* threads run
// without a monolithic thread package getting in the way.
//
// Default strategy: CthAwaken enqueues a generalized "resume this thread"
// message into the Converse scheduler queue (a ready thread *is* a message,
// §3.1.1), and CthSuspend transfers control back to the PE's scheduler
// context, which will deliver that message in due course.  This is what
// unifies threads and message-driven objects under one scheduler.
//
// All Cth objects are PE-local: a thread is created, runs, and dies on one
// PE, and may only be named by code on that PE.  (Cross-PE interactions go
// through messages, as everywhere in Converse.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace converse {

struct CthThread;  // opaque

/// Which context-switch implementation a PE uses.
enum class CthBackend {
  kAsm,       // hand-written x86-64 switch (no sigprocmask syscall)
  kUcontext,  // portable swapcontext
};

/// Default backend for the build (kAsm where available, else kUcontext).
CthBackend CthDefaultBackend();
bool CthBackendAvailable(CthBackend backend);

/// Select the backend for threads subsequently created on this PE.  Must be
/// called before any thread is created on the PE (asserts otherwise).
/// Optional — the paper's CthInit(); the module self-initializes.
void CthInit(CthBackend backend);

/// Create a suspended thread that will run `fn` when first resumed or
/// awakened.  The default stack size comes from MachineConfig.
CthThread* CthCreate(std::function<void()> fn);
CthThread* CthCreateOfSize(std::function<void()> fn, std::size_t stack_bytes);
/// Paper-style signature.
CthThread* CthCreate(void (*fn)(void*), void* arg);

/// Immediate context switch to `thr`; the caller continues only when some
/// other thread (or the scheduler) resumes it.
void CthResume(CthThread* thr);

/// Suspend the current thread, transferring control according to the
/// current thread's suspend strategy (default: back to the scheduler).
/// Must not be called from the scheduler context itself.
void CthSuspend();

/// Add `thr` to the ready pool according to its awaken strategy (default:
/// enqueue a resume message in the scheduler queue, FIFO).
void CthAwaken(CthThread* thr);

/// Awaken with a scheduler priority (extension: prioritized thread
/// scheduling, paper §2.3).
void CthAwakenPrio(CthThread* thr, std::int32_t prio);

/// CthAwaken(self) then CthSuspend().
void CthYield();

/// Terminate the current thread; control transfers per its suspend
/// strategy.  Never returns.  A thread whose entry function returns exits
/// implicitly.
[[noreturn]] void CthExit();

/// The currently executing thread, or the PE's main (scheduler) thread
/// object when no user thread is running.
CthThread* CthSelf();

/// True if `thr` is the PE's main/scheduler context.
bool CthIsMain(CthThread* thr);

/// Override how `thr` is awakened and how it chooses a successor when it
/// suspends (paper's CthSetStrategy).  `awaken_fn(thr)` must store the
/// thread where the suspend side can find it; `suspend_fn()` must transfer
/// control to some ready thread via CthResume.  Pass nullptr to restore the
/// default for either.
void CthSetStrategy(CthThread* thr, std::function<void()> suspend_fn,
                    std::function<void(CthThread*)> awaken_fn);

/// Destroy a suspended, never-to-run-again thread that is not the caller.
void CthFree(CthThread* thr);

/// Per-thread user data slot (language runtimes hang their state here).
void CthSetData(CthThread* thr, void* data);
void* CthGetData(CthThread* thr);

/// Diagnostics.
int CthLiveThreads();             // user threads alive on this PE
std::uint64_t CthSwitchCount();   // context switches performed on this PE

}  // namespace converse

// -- module registration anchor ------------------------------------------------
// Including this header registers the module's per-PE init hook during
// static initialization, so handler indices are identical on every PE of
// any machine started afterwards (see converse/detail/module.h).  The
// anonymous-namespace anchor is deliberate: one idempotent call per TU.
namespace converse::detail {
int CthModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int cth_module_anchor = converse::detail::CthModuleRegister();
}  // namespace
