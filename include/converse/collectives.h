// Machine-wide collective operations over the spanning tree (paper §3.1.3,
// EMI: "reductions and other global operations, as well as spanning-tree
// based operations").
//
// Collectives are split-phase, like everything message-driven in Converse:
// a PE contributes and continues; completion is announced by delivering a
// message to a user handler.  Blocking convenience wrappers are provided
// for SPM modules — they explicitly pump the scheduler while waiting, which
// is precisely the paper's sanctioned way for the explicit control regime
// to interleave with the implicit one (§3.1.2 footnote).
//
// Ordering contract (as in every SPMD collective system): all PEs issue the
// same sequence of machine-wide collective calls.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace converse {

// ---- Spanning tree queries --------------------------------------------------

int CmiSpanTreeRoot();
int CmiSpanTreeParent(int pe);
std::vector<int> CmiSpanTreeChildren(int pe);

// ---- Reducers ----------------------------------------------------------------

/// Combines a contribution into the accumulator (both `size` bytes).
using CmiReducerFn =
    std::function<void(void* acc, const void* contrib, std::size_t size)>;

/// Register a reducer; same cross-PE ordering contract as handlers.
int CmiRegisterReducer(CmiReducerFn fn);

/// Apply a registered reducer: merge `contrib` into `acc` (`size` bytes).
/// Used by components that run their own reduction trees (chare arrays).
void CmiApplyReducer(int reducer, void* acc, const void* contrib,
                     std::size_t size);

/// Built-in reducers (registered by the collectives module itself).
int CmiReducerSumI64();
int CmiReducerMaxI64();
int CmiReducerMinI64();
int CmiReducerSumF64();
int CmiReducerMaxF64();
int CmiReducerMinF64();
int CmiReducerBitOr64();
int CmiReducerBitAnd64();

// ---- Reductions --------------------------------------------------------------

/// Contribute `size` bytes to the current reduction; when all PEs have
/// contributed, the combined result is delivered as a message payload to
/// `root_handler` on the spanning-tree root PE only.
void CmiReduce(const void* data, std::size_t size, int reducer,
               int root_handler);

/// Like CmiReduce, but the result is broadcast and delivered to `handler`
/// on every PE.
void CmiAllReduce(const void* data, std::size_t size, int reducer,
                  int handler);

/// Blocking all-reduce for SPM modules: combines in place and returns when
/// the result is available.  Pumps the scheduler while waiting.
void CmiAllReduceBlocking(void* data_inout, std::size_t size, int reducer);

/// Typed convenience (blocking all-reduce).
std::int64_t CmiAllReduceI64(std::int64_t value, int reducer);
double CmiAllReduceF64(double value, int reducer);

// ---- Barrier -----------------------------------------------------------------

/// Split-phase barrier: when every PE has called it, an empty message is
/// delivered to `handler` on every PE.
void CmiBarrier(int handler);

/// Blocking barrier for SPM modules (pumps the scheduler).
void CmiBarrierBlocking();

}  // namespace converse

// -- module registration anchor ------------------------------------------------
// Including this header registers the module's per-PE init hook during
// static initialization, so handler indices are identical on every PE of
// any machine started afterwards (see converse/detail/module.h).  The
// anonymous-namespace anchor is deliberate: one idempotent call per TU.
namespace converse::detail {
int CollectivesModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int collectives_module_anchor = converse::detail::CollectivesModuleRegister();
}  // namespace
