// Dynamic (seed) load balancing (paper §3.3.1).
//
// A language runtime hands over a "seed" — a generalized message for a
// piece of work that can execute on any PE.  The load balancing module
// moves seeds from processor to processor until it hands the seed to its
// handler on some destination PE ("the seeds ... can float around the
// system until they take root").  The interface to the strategy is fixed;
// multiple strategies are provided and the application links/selects the
// one it wants — the paper's need-based-cost rule applied to balancing.
//
// All strategies deliver a placed seed by enqueueing it into the scheduler
// queue with the strategy recorded in its header (so prioritized seeds stay
// prioritized).  The seed's handler therefore owns its message.
#pragma once

#include <cstdint>

namespace converse {

enum class CldStrategy : std::int32_t {
  kLocal = 0,     // never move seeds (baseline)
  kRandom = 1,    // spray each seed to a uniformly random PE
  kNeighbor = 2,  // diffuse along a ring using exchanged load estimates
  kCentral = 3,   // PE 0 dispatches to the least-loaded PE
};

/// Select the strategy.  Must be called identically on every PE before any
/// seed is created (typically at the top of the entry function).
void CldSetStrategy(CldStrategy strategy);
CldStrategy CldGetStrategy();

/// Hand a seed to the balancer.  Takes ownership of `msg` (a complete
/// message whose handler is the seed's "take root" handler).  The seed will
/// eventually be enqueued into some PE's scheduler queue.
void CldEnqueue(void* msg);

/// Prioritized seed (integer priority, smaller first).
void CldEnqueuePrio(void* msg, std::int32_t prio);

/// This PE's load estimate used by the strategies (scheduler queue length).
int CldLoad();

/// Diagnostics: seeds that took root on this PE / hops observed here.
std::uint64_t CldSeedsPlaced();
std::uint64_t CldSeedHops();

}  // namespace converse

// -- module registration anchor ------------------------------------------------
// Including this header registers the module's per-PE init hook during
// static initialization, so handler indices are identical on every PE of
// any machine started afterwards (see converse/detail/module.h).  The
// anonymous-namespace anchor is deliberate: one idempotent call per TU.
namespace converse::detail {
int CldModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int cld_module_anchor = converse::detail::CldModuleRegister();
}  // namespace
