// Dynamic (seed) load balancing (paper §3.3.1).
//
// A language runtime hands over a "seed" — a generalized message for a
// piece of work that can execute on any PE.  The load balancing module
// moves seeds from processor to processor until it hands the seed to its
// handler on some destination PE ("the seeds ... can float around the
// system until they take root").  The interface to the strategy is fixed;
// multiple strategies are provided and the application links/selects the
// one it wants — the paper's need-based-cost rule applied to balancing.
//
// The four legacy strategies deliver a placed seed by enqueueing it into
// the scheduler queue with the strategy recorded in its header (so
// prioritized seeds stay prioritized).  The two adaptive strategies
// (kSteal, kPeriodic) instead keep seeds in a per-PE stealable backlog
// outside the scheduler queue until execution — priorities are preserved
// because a per-PE worker always executes the best-priority seed next, and
// the backlog stays movable: idle PEs steal half of it (kSteal) and
// overloaded PEs push their excess toward the running average on a
// virtual-clock timer (kPeriodic).  Either way the seed's handler owns its
// message when it finally runs.
//
// Determinism: under the deterministic sim backend (converse/sim.h) every
// adaptive decision — victim choice, steal grant, rebalance move — draws
// from PRNGs seeded by the machine/sim seed and is folded into the sim's
// event-trace hash, so the same seed replays the same placements
// bit-for-bit (docs/TESTING.md, "Load-balancer fuzzing").
#pragma once

#include <cstdint>
#include <string>

#include "converse/sim.h"

namespace converse {

enum class CldStrategy : std::int32_t {
  kLocal = 0,     // never move seeds (baseline)
  kRandom = 1,    // spray each seed to a uniformly random PE
  kNeighbor = 2,  // diffuse along a ring using exchanged load estimates
  kCentral = 3,   // PE 0 dispatches to the least-loaded PE
  kSteal = 4,     // idle PEs steal half of a victim's stealable backlog
  kPeriodic = 5,  // measurement-based: push excess toward the average on a
                  // virtual-clock timer (plain machines piggyback the pass
                  // on worker execution instead)
};

inline constexpr int kCldStrategyCount = 6;

/// Select the strategy.  Must be called identically on every PE before any
/// seed is created (typically at the top of the entry function).
void CldSetStrategy(CldStrategy strategy);
CldStrategy CldGetStrategy();

/// Hand a seed to the balancer.  Takes ownership of `msg` (a complete
/// message whose handler is the seed's "take root" handler).  The seed will
/// eventually be enqueued into some PE's scheduler queue (legacy
/// strategies) or executed by that PE's backlog worker (adaptive ones).
void CldEnqueue(void* msg);

/// Prioritized seed (integer priority, smaller first).
void CldEnqueuePrio(void* msg, std::int32_t prio);

/// This PE's load estimate used by the strategies: scheduler queue length
/// plus the stealable backlog (the latter is zero for legacy strategies).
int CldLoad();

/// Diagnostics: seeds that took root on this PE / hops observed here.
std::uint64_t CldSeedsPlaced();
std::uint64_t CldSeedHops();

/// Declare, from inside a seed handler, that the seed consumed `us`
/// microseconds of machine time.  On a timed machine (sim backend or a
/// NetModel) the adaptive strategies' backlog worker defers its next seed
/// by that much virtual time, so backlogs, steals, and the virtual-time
/// makespan model real occupancy — the mechanism the million-seed stress
/// suite and benchmarks/ldb_strategies.cpp measure balancing quality with.
/// On a plain machine (where real time passes inside the handler) and
/// under the four legacy strategies this only accrues into the busy-time
/// diagnostic below.
void CldChargeTime(double us);

/// Total microseconds charged via CldChargeTime on this PE.
double CldBusyTimeUs();

/// Per-PE balancer counters, single-writer like CmiStats (read from the
/// owning PE, or from the entry after the schedulers returned).  These are
/// the quantities the conservation oracles in simfuzz --ldb balance.
struct CldCounters {
  std::uint64_t spawned = 0;      // seeds handed to CldEnqueue* here
  std::uint64_t placed = 0;       // seeds that took root (executed) here
  std::uint64_t forwarded = 0;    // seeds sent to another PE, any reason
  std::uint64_t stored = 0;       // seeds pushed into the stealable backlog
  std::uint64_t executed_store = 0;  // backlog seeds executed by the worker
  std::uint64_t stolen_out = 0;   // seeds packed into steal replies here
  std::uint64_t stolen_in = 0;    // seeds unpacked from steal replies here
  std::uint64_t rebalanced_out = 0;  // seeds pushed by a rebalance tick
  std::uint64_t msgs_sent = 0;    // balancer wire messages sent from here
                                  // (floating seeds, steal protocol,
                                  // status/drain/sample/worker-tick)
  std::uint64_t msgs_received = 0;  // balancer wire messages delivered here
};
CldCounters CldGetCounters();

/// Planted bug for the simfuzz --ldb conservation-oracle self-test: every
/// Nth non-empty steal reply this PE grants is silently freed instead of
/// sent, losing the seeds packed inside (0 = off, the default).  Must be
/// set identically on every PE before seeds are created.
void CldSetLoseStealReplyEvery(std::uint32_t n);

// ---------------------------------------------------------------------------
// Load-balancer fuzzing (tools/simfuzz --ldb): one seeded skewed workload
// under the deterministic sim, checked against conservation oracles.
// ---------------------------------------------------------------------------

namespace ldb {

struct LdbFuzzParams {
  std::uint64_t seed = 1;
  int npes = 4;
  /// Strategy under test, 0..5 (CldStrategy values); -1 draws one from the
  /// seed so a sweep cycles through all six.
  int strategy = -1;
  std::uint64_t seeds_per_pe = 64;  // seeds spawned by each spawning PE
  int waves = 4;                    // spawn bursts (virtual-time separated)
  double prio_fraction = 0.25;      // fraction of seeds given priorities
  SimFaults faults;
  /// Plant the lost-steal-reply bug (CldSetLoseStealReplyEvery(3)) so the
  /// oracles demonstrably catch and shrink it; forces strategy kSteal.
  bool plant_lost_steal_reply = false;
};

struct LdbFuzzResult {
  bool ok = false;
  std::string failure;  // first violated oracle (empty when ok)
  SimReport report;
  CldCounters totals;         // balancer counters summed over PEs
  std::uint64_t spawned = 0;  // workload seeds created
  std::uint64_t executed = 0; // workload seeds whose handler ran
  int strategy = 0;           // resolved CldStrategy value of the run
};

/// Run one deterministic balancer case and check the oracles:
///  * the run ends by global quiescence (no stuck PE, no stranded seed);
///  * the stealable backlog drains exactly: stored == executed_store +
///    stolen_out + rebalanced_out, and steal-reply seed counts balance on
///    clean schedules (stolen_in == stolen_out);
///  * total message conservation: balancer + workload wire messages
///    received == sent - dropped + duplicated (the injector's exact
///    counts), under any fault mix;
///  * on clean schedules, seed conservation: every spawned seed executes
///    exactly once (spawned == placed == executed) — this is the oracle
///    that catches plant_lost_steal_reply.
LdbFuzzResult RunLdbFuzzCase(const LdbFuzzParams& params);

/// Greedy shrink of a failing case (fewer seeds, waves, PEs, disabled
/// fault dimensions), like sim::Minimize.
LdbFuzzParams MinimizeLdb(const LdbFuzzParams& failing, int budget = 48);

/// One-line replay command, e.g.
/// "tools/simfuzz --ldb --seed 7 --pes 4 --strategy 4 --lseeds 64".
std::string FormatLdbReplay(const LdbFuzzParams& params);

}  // namespace ldb
}  // namespace converse

// -- module registration anchor ------------------------------------------------
// Including this header registers the module's per-PE init hook during
// static initialization, so handler indices are identical on every PE of
// any machine started afterwards (see converse/detail/module.h).  The
// anonymous-namespace anchor is deliberate: one idempotent call per TU.
namespace converse::detail {
int CldModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int cld_module_anchor = converse::detail::CldModuleRegister();
}  // namespace
