// Event tracing (paper §3.3.2).
//
// Converse defines a standard trace format all language implementations
// share — message send, delivery (handler begin/end), scheduler enqueue,
// idle periods, thread/object creation — plus an extensible self-describing
// part: user event types registered by name at runtime, emitted with the
// standard records and described in the dump header.  Several variants of
// the module exist per the paper ("depending on the sophistication of the
// tracing desired"): kNone (hooks disconnected, one dead branch per event),
// kSummary (O(#handlers) counters), kLog (full in-memory event log).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace converse {

enum class TraceMode { kNone, kSummary, kLog };

/// Start tracing on the calling PE in the given mode.  Typically called on
/// every PE at the top of the entry function.
void TraceBegin(TraceMode mode);

/// Stop tracing on the calling PE (hooks disconnect; data is retained).
void TraceEnd();

TraceMode TraceCurrentMode();

// ---- Standard record kinds ---------------------------------------------------

enum class TraceEventKind : std::uint8_t {
  kSend = 0,
  kDeliverBegin = 1,   // handler invocation from the network
  kDeliverEnd = 2,
  kScheduleBegin = 3,  // handler invocation from the scheduler queue
  kScheduleEnd = 4,
  kEnqueue = 5,
  kIdleBegin = 6,
  kIdleEnd = 7,
  kThreadCreate = 8,
  kObjectCreate = 9,
  kUserEvent = 10,
  kAggFlush = 11,  // aggregation frame flushed (handler=msg count,
                   // size=payload bytes, aux=destination PE)
};

struct TraceRecord {
  double time_us;
  TraceEventKind kind;
  std::uint8_t pad = 0;
  std::uint16_t aux16 = 0;     // e.g. destination/source PE
  std::uint32_t handler = 0;   // handler id or user event id
  std::uint32_t size = 0;      // message size where applicable
};

// ---- Summary -------------------------------------------------------------------

struct TraceHandlerSummary {
  std::uint64_t invocations = 0;
  double total_us = 0.0;
};

struct TraceSummary {
  std::uint64_t sends = 0;       // logical messages (aggregation-transparent)
  std::uint64_t deliveries = 0;  // logical messages (carriers excluded)
  std::uint64_t enqueues = 0;
  std::uint64_t idle_periods = 0;
  std::uint64_t agg_frames = 0;      // aggregation frames flushed
  std::uint64_t agg_batched = 0;     // messages that rode in those frames
  std::uint64_t bcast_forwards = 0;  // spanning-tree copies sent by this PE
  double idle_us = 0.0;
  std::vector<TraceHandlerSummary> per_handler;  // indexed by handler id
};

/// Snapshot of the calling PE's summary (valid in kSummary and kLog modes).
TraceSummary TraceGetSummary();

// ---- Full log (kLog) -------------------------------------------------------------

const std::vector<TraceRecord>& TraceGetLog();
void TraceClear();

/// Write this PE's log as the standard text format: a self-describing
/// header (format version, user event dictionary) followed by one record
/// per line.
void TraceDump(std::FILE* out);

// ---- Self-describing user events (the extensible part) ----------------------------

/// Register a user event type by name; returns its id (PE-local).
int TraceRegisterUserEvent(const std::string& name);
void TraceUserEvent(int event_id);

/// Language runtimes record creation events through these.
void TraceNoteThreadCreate();
void TraceNoteObjectCreate();

}  // namespace converse

// -- module registration anchor ------------------------------------------------
// Including this header registers the module's per-PE init hook during
// static initialization, so handler indices are identical on every PE of
// any machine started afterwards (see converse/detail/module.h).  The
// anonymous-namespace anchor is deliberate: one idempotent call per TU.
namespace converse::detail {
int TraceModuleRegister();
}  // namespace converse::detail
namespace {
[[maybe_unused]] const int trace_module_anchor = converse::detail::TraceModuleRegister();
}  // namespace
