// CciCheck — the message-lifecycle & concurrency validation layer.
//
// Converse's core contract is manual ownership of generalized messages: a
// handler may only keep a delivered buffer by calling CmiGrabBuffer, and
// everything else is freed behind the caller's back (paper §3.1.3).  With
// one OS thread per PE those ownership bugs are silent data races.  CciCheck
// instruments the message and scheduler hot paths with a per-buffer
// ownership state machine, handler-table validation, cross-PE access
// assertions and scheduler/thread invariant checks.
//
// The subsystem is compile-time selectable: configure with
// `-DCONVERSE_CHECK=ON` (default ON for Debug builds).  When disabled every
// hook below is an empty inline function, so Release hot paths compile to
// exactly the code they had before CciCheck existed.
//
// A fatal violation prints one diagnostic line naming the buffer, the PE and
// the violated rule, then aborts:
//
//   [CciCheck] fatal: rule=double-free pe=1 buffer=0x55e2... : CmiFree of an
//   already-freed message (handler 7, size 64)
//
// See docs/ANALYSIS.md for the full rule catalogue and how each diagnostic
// maps to a buggy program shape.
#pragma once

#include <cstddef>
#include <cstdint>

#ifndef CONVERSE_CHECK_ENABLED
#define CONVERSE_CHECK_ENABLED 0
#endif

namespace converse {

/// The rules CciCheck enforces.  Fatal rules abort the process; warning
/// rules print to stderr and increment CciCheckCounters().warnings.
enum class CciRule : int {
  // -- buffer ownership state machine (fatal) --
  kDoubleFree = 0,       // CmiFree of an already-freed message
  kForeignFree,          // CmiFree of a pointer not from CmiAlloc
  kUseAfterFree,         // send/enqueue/dispatch of an already-freed message
  kUseAfterSend,         // touching a buffer after ownership moved to the
                         //   MMI (send) or the scheduler queue (enqueue)
  kUngrabbedFree,        // CmiFree of a system buffer without CmiGrabBuffer
  kUngrabbedSend,        // send-and-free of an ungrabbed system buffer
  kDoubleGrab,           // CmiGrabBuffer twice on the same delivery
  kGrabOutsideDelivery,  // CmiGrabBuffer on a buffer this PE is not delivering
  kDoubleEnqueue,        // CsdEnqueue of a message already in a queue
  kEnqueueNotOwned,      // CsdEnqueue of an in-flight or ungrabbed buffer
  // -- handler table (fatal) --
  kNoHandler,            // dispatch of a message whose handler was never set
  kBadHandler,           // handler index outside this PE's table
  kHandlerDivergence,    // sender registered the handler, this PE did not
  // -- cross-PE / threading (fatal) --
  kNonPeThread,          // Converse call from a thread that is not a PE
  kCrossPeAccess,        // touching another PE's state (e.g. its CthThread)
  kThreadResumedTwice,   // CthResume of an exited thread
  kThreadUseAfterFree,   // Cth operation on a freed/unknown thread object
  // -- scheduler/queue invariants --
  kQueueCorruption,      // scheduler queue holds a corrupted message (fatal)
  kExitImbalance,        // CsdExitScheduler never consumed by a scheduler
                         //   (warning, reported at machine teardown)
  kThreadLeak,           // live Cth threads at machine teardown (warning)
  kBufferLeak,           // live message buffers at machine teardown (warning)
  // -- gather/scatter argument validation (fatal, checked in all builds) --
  kGatherOverflow,       // CmiVectorSend segment sizes negative or summing
                         //   past the 32-bit wire message size
};

/// Stable kebab-case name of a rule (what the diagnostic line prints).
const char* CciRuleName(CciRule rule);

/// True when the library was configured with -DCONVERSE_CHECK=ON.
constexpr bool CciCheckEnabled() { return CONVERSE_CHECK_ENABLED != 0; }

/// Process-wide checker counters.  When the checker is disabled,
/// live_buffers is -1 and every other field is 0.
struct CciCounters {
  std::int64_t live_buffers = -1;  // currently allocated Converse messages
  std::uint64_t allocs = 0;        // CmiAlloc calls observed
  std::uint64_t frees = 0;         // CmiFree calls observed
  std::uint64_t grabs = 0;         // CmiGrabBuffer calls observed
  std::uint64_t warnings = 0;      // non-fatal rule reports
};
CciCounters CciCheckCounters();

namespace detail::check {

#if CONVERSE_CHECK_ENABLED

// Hot-path hooks, called from the core runtime.  Real implementations live
// in src/check/check.cpp.
void OnAlloc(void* msg, std::size_t nbytes);
void OnFree(void* msg);           // validate + poison; caller deletes after
void OnReclaim(void* msg);        // machine-layer teardown free: skip checks
void OnCopyReset(void* msg);      // CopyMessage rewrote the header flags
void OnSend(void* msg);           // ownership handed to the machine layer
void OnEnqueue(void* msg);        // entering a CqsQueue
void OnDequeue(void* msg);        // leaving a CqsQueue (dequeuer owns it)
void OnDeliverBegin(void* msg, bool system_owned);
void OnDeliverEnd(void* msg);     // ungrabbed: dispatcher frees next
void OnMmiReturn(void* msg);      // CmiGetMsg/CmiGetSpecificMsg result
void OnGrab(void* msg, bool already_grabbed);
void OnHandlerRegister();         // publish the PE's handler count
void OnDispatchHandler(const void* msg, std::size_t table_size);
void OnPeFinish();                // teardown invariants (exit balance, leaks)
void CheckInsidePe(const void* where);

#else

inline void OnAlloc(void*, std::size_t) {}
inline void OnFree(void*) {}
inline void OnReclaim(void*) {}
inline void OnCopyReset(void*) {}
inline void OnSend(void*) {}
inline void OnEnqueue(void*) {}
inline void OnDequeue(void*) {}
inline void OnDeliverBegin(void*, bool) {}
inline void OnDeliverEnd(void*) {}
inline void OnMmiReturn(void*) {}
inline void OnGrab(void*, bool) {}
inline void OnHandlerRegister() {}
inline void OnDispatchHandler(const void*, std::size_t) {}
inline void OnPeFinish() {}
inline void CheckInsidePe(const void*) {}

#endif  // CONVERSE_CHECK_ENABLED

// Cold diagnostic sinks.  Always defined (tiny, never on a hot path) so
// subsystems can report violations without preprocessor conditionals; call
// sites gate on CciCheckEnabled(), which constant-folds away when OFF.
[[noreturn]] void Violate(CciRule rule, const void* buffer, const char* fmt,
                          ...) __attribute__((format(printf, 3, 4)));
void Warn(CciRule rule, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
[[noreturn]] void OnGrabMiss(void* msg);

}  // namespace detail::check
}  // namespace converse
