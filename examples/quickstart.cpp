// Quickstart: the smallest complete Converse program.
//
//  * start a machine (here: 4 PEs as threads),
//  * register a handler for a generalized message,
//  * send messages and run the unified scheduler until done.
//
// Build & run:   ./examples/quickstart
#include <cstdio>
#include <cstring>

#include "converse/converse.h"

using namespace converse;

int main() {
  constexpr int kNpes = 4;

  RunConverse(kNpes, [](int pe, int npes) {
    // 1. Register handlers — identically on every PE so indices agree.
    //    `hello` prints and replies; `reply` counts and ends the run.
    static thread_local int replies = 0;

    int reply = CmiRegisterHandler([npes](void* msg) {
      int from;
      std::memcpy(&from, CmiMsgPayload(msg), sizeof(from));
      CmiPrintf("pe %d: got reply from pe %d\n", CmiMyPe(), from);
      if (++replies == npes - 1) {
        // Everyone answered: stop every PE's scheduler.
        ConverseBroadcastExit();
      }
    });

    int hello = CmiRegisterHandler([reply](void* msg) {
      CmiPrintf("pe %d: hello from pe %d\n", CmiMyPe(),
                CmiMsgSourcePe(msg));
      // Reply to the sender.
      const int me = CmiMyPe();
      void* r = CmiMakeMessage(reply, &me, sizeof(me));
      CmiSyncSendAndFree(CmiMsgSourcePe(msg), CmiMsgTotalSize(r), r);
    });

    // 2. PE 0 broadcasts a greeting to everyone else.
    if (pe == 0) {
      void* m = CmiAlloc(CmiMsgHeaderSizeBytes());
      CmiSetHandler(m, hello);
      CmiSyncBroadcast(CmiMsgTotalSize(m), m);
      CmiFree(m);
    }

    // 3. Hand the PE to the unified scheduler (paper Figure 3); it
    //    returns when a handler calls CsdExitScheduler (via the exit
    //    broadcast above).
    CsdScheduler(-1);

    if (pe == 0) CmiPrintf("quickstart: done\n");
  });
  return 0;
}
