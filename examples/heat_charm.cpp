// A 1-D heat equation written in the message-driven object style: a chare
// array of cells exchanging ghost values by entry-method messages, with an
// array reduction deciding convergence each sweep.  Compare examples/
// jacobi_dp.cpp — the same physics in the SPMD regime; this version is
// what the paradigm the paper calls "concurrent objects" (§2.1) looks
// like, and the two could share one machine.
//
// Run: ./examples/heat_charm [npes] [cells] [max-sweeps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "converse/converse.h"
#include "converse/langs/charm.h"

using namespace converse;
using namespace converse::charm;

namespace {

struct GhostMsg {
  std::int32_t from;  // -1 = left neighbor, +1 = right neighbor
  double value;
};

int g_ncells = 64;
int g_entry_exchange = -1;
int g_entry_ghost = -1;
int g_client_handler = -1;

struct CellElem : ArrayElement {
  double value = 0;
  double left = 0, right = 0;
  int ghosts_needed = 2;
  int ghosts_have = 0;

  CellElem(int idx, const void*, std::size_t) {
    value = idx == 0 ? 100.0 : 0.0;  // hot left boundary
    ghosts_needed = 2 - (idx == 0 ? 1 : 0) - (idx == g_ncells - 1 ? 1 : 0);
  }

  /// One sweep: publish my value to my neighbors.
  void Exchange(const void*, std::size_t) {
    const GhostMsg to_left{+1, value};   // I am their right neighbor
    const GhostMsg to_right{-1, value};  // I am their left neighbor
    if (Index() > 0) {
      SendToElement(ArrayId(), Index() - 1, g_entry_ghost, &to_left,
                    sizeof(to_left));
    }
    if (Index() < g_ncells - 1) {
      SendToElement(ArrayId(), Index() + 1, g_entry_ghost, &to_right,
                    sizeof(to_right));
    }
    MaybeRelax();  // boundary cells with zero ghosts relax immediately
  }

  /// A neighbor's value arrived; relax once all expected ghosts are in.
  void Ghost(const void* data, std::size_t) {
    GhostMsg g;
    std::memcpy(&g, data, sizeof(g));
    (g.from < 0 ? left : right) = g.value;
    ++ghosts_have;
    MaybeRelax();
  }

  void MaybeRelax() {
    if (ghosts_have < ghosts_needed) return;
    ghosts_have = 0;
    double next = value;
    if (Index() == 0 || Index() == g_ncells - 1) {
      // Dirichlet boundaries hold their value.
    } else {
      next = 0.5 * (left + right);
    }
    const double delta = std::fabs(next - value);
    value = next;
    // Contribute this sweep's residual; the client drives the next sweep.
    ArrayContribute(this, &delta, sizeof(delta), CmiReducerSumF64(),
                    g_client_handler);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const int npes = argc > 1 ? std::atoi(argv[1]) : 3;
  g_ncells = argc > 2 ? std::atoi(argv[2]) : 64;
  const int max_sweeps = argc > 3 ? std::atoi(argv[3]) : 3000;

  RunConverse(npes, [max_sweeps](int pe, int) {
    const int type = RegisterArrayElementType<CellElem>("cell");
    g_entry_exchange = RegisterEntryMethod<CellElem>(&CellElem::Exchange);
    g_entry_ghost = RegisterEntryMethod<CellElem>(&CellElem::Ghost);

    static int aid;
    static int sweep;
    sweep = 0;
    g_client_handler = CmiRegisterHandler([max_sweeps](void* msg) {
      double residual;
      std::memcpy(&residual, CmiMsgPayload(msg), sizeof(residual));
      CmiFree(msg);
      ++sweep;
      if (residual > 1e-6 && sweep < max_sweeps) {
        BroadcastToArray(aid, g_entry_exchange, nullptr, 0);
        return;
      }
      CmiPrintf("heat_charm: %s after %d sweeps, residual %.2e\n",
                residual <= 1e-6 ? "converged" : "stopped", sweep,
                residual);
      ConverseBroadcastExit();
    });

    if (pe == 0) {
      aid = CreateArray(type, g_ncells, nullptr, 0);
      CsdScheduler(1);  // construct the local descriptor
      BroadcastToArray(aid, g_entry_exchange, nullptr, 0);
    }
    CsdScheduler(-1);
  });
  std::printf("heat_charm: done\n");
  return 0;
}
