// transport_smoke — cross-process exerciser for the socket / SMP-node
// transport backends, used by the CI multi-process smoke leg:
//
//   tools/converserun -np 2 examples/transport_smoke
//   tools/converserun -np 4 -ppn 2 examples/transport_smoke
//
// Three phases, each with a hard pass/fail count (any mismatch exits
// nonzero through the final verification broadcast):
//
//   1. pingpong  — every PE ping-pongs a counted token with PE 0
//                  (unicast both directions across the wire);
//   2. broadcast — PE 0 broadcasts small and share-threshold-sized
//                  payloads; every PE checks the pattern and replies
//                  (exercises node-cast records + in-node fan-out on both
//                  the wrapper and shared-block paths);
//   3. steal     — a skewed burst of Cld kSteal seeds spawned on PE 0
//                  must all take root somewhere (seed messages and steal
//                  protocol traffic cross the wire transparently).
//
// Also runs standalone (no converserun, single process, any PE count).
#include <atomic>
#include <cstdio>
#include <cstring>

#include "converse/cld.h"
#include "converse/converse.h"

using namespace converse;

namespace {

constexpr int kPings = 64;        // pingpong round trips per PE
constexpr int kSmallBcasts = 32;  // small broadcast payloads
constexpr int kBigBcasts = 4;     // share-threshold-sized payloads
constexpr std::size_t kBigBytes = 8192;
constexpr int kSeeds = 256;       // kSteal seeds spawned on PE 0

std::atomic<std::uint64_t> g_seeds_run{0};
std::atomic<int> g_failures{0};

struct Counts {
  int pongs = 0;
  int bcasts = 0;
  int bcast_acks = 0;  // PE 0 only
  int seed_acks = 0;   // PE 0 only
};

void FillPattern(void* payload, std::size_t n, unsigned seed) {
  auto* p = static_cast<unsigned char*>(payload);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<unsigned char>((seed + i * 131) & 0xff);
  }
}

bool CheckPattern(const void* payload, std::size_t n, unsigned seed) {
  const auto* p = static_cast<const unsigned char*>(payload);
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] != static_cast<unsigned char>((seed + i * 131) & 0xff)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  int npes = 4;
  if (const char* env = std::getenv("CONVERSE_NPES")) {
    npes = std::atoi(env);  // match the launcher so standalone runs agree
    if (npes < 1) npes = 4;
  }

  RunConverse(npes, [](int pe, int n) {
    static thread_local Counts c;
    c = Counts{};
    CldSetStrategy(CldStrategy::kSteal);

    // Completion is tracked entirely by messages converging on PE 0 (a
    // kSteal seed may take root on any node, so only message acks can
    // prove global completion): n-1 pingpong-done acks + n acks per
    // broadcast + one ack per seed, then PE 0 fires the exit broadcast.
    const int want_bcasts = kSmallBcasts + kBigBcasts;
    auto maybe_finish = [n, want_bcasts] {
      if (c.pongs == (n > 1 ? n - 1 : 0) &&
          c.bcast_acks == want_bcasts * n && c.seed_acks == kSeeds &&
          c.bcasts == want_bcasts) {
        ConverseBroadcastExit();
      }
    };

    // ---- handlers (registered identically everywhere) ----
    int h_pong = -1, h_ping = -1, h_bcast = -1, h_back = -1, h_seed = -1,
        h_sdone = -1, h_ppdone = -1;

    // PE 0: a peer finished its kPings round trips.
    h_ppdone = CmiRegisterHandler([maybe_finish](void*) {
      ++c.pongs;
      maybe_finish();
    });

    // PE!=0: the pong came back — fire the next ping, or report done.
    int h_ping_fwd = -1;
    h_pong = CmiRegisterHandler([&h_ping_fwd, &h_ppdone](void* msg) {
      int round;
      std::memcpy(&round, CmiMsgPayload(msg), sizeof(round));
      if (round + 1 < kPings) {
        const int next = round + 1;
        void* m = CmiMakeMessage(h_ping_fwd, &next, sizeof(next));
        CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      } else {
        const int me = CmiMyPe();
        void* m = CmiMakeMessage(h_ppdone, &me, sizeof(me));
        CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      }
    });

    // PE 0: bounce each ping straight back to its sender.
    h_ping = CmiRegisterHandler([h_pong](void* msg) {
      int round;
      std::memcpy(&round, CmiMsgPayload(msg), sizeof(round));
      void* m = CmiMakeMessage(h_pong, &round, sizeof(round));
      CmiSyncSendAndFree(CmiMsgSourcePe(msg), CmiMsgTotalSize(m), m);
    });
    h_ping_fwd = h_ping;

    // PE 0: count broadcast acks.
    h_back = CmiRegisterHandler([maybe_finish](void*) {
      ++c.bcast_acks;
      maybe_finish();
    });

    // Everyone: verify a broadcast payload, ack to PE 0.
    h_bcast = CmiRegisterHandler([h_back, maybe_finish](void* msg) {
      const std::size_t size =
          CmiMsgTotalSize(msg) - static_cast<std::size_t>(
                                     CmiMsgHeaderSizeBytes()) -
          sizeof(unsigned);
      unsigned seed;
      std::memcpy(&seed, CmiMsgPayload(msg), sizeof(seed));
      if (!CheckPattern(static_cast<unsigned char*>(CmiMsgPayload(msg)) +
                            sizeof(seed),
                        size, seed)) {
        g_failures.fetch_add(1);
      }
      ++c.bcasts;
      void* m = CmiMakeMessage(h_back, &seed, sizeof(seed));
      CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      if (CmiMyPe() == 0) maybe_finish();
    });

    // PE 0: count seed-completion acks.
    h_sdone = CmiRegisterHandler([maybe_finish](void*) {
      ++c.seed_acks;
      maybe_finish();
    });

    // Seeds take root anywhere; each acks PE 0.
    h_seed = CmiRegisterHandler([&h_sdone](void* msg) {
      g_seeds_run.fetch_add(1);
      CldChargeTime(5.0);
      const int one = 1;
      void* m = CmiMakeMessage(h_sdone, &one, sizeof(one));
      CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      CmiFree(msg);
    });

    // ---- phase 1: pingpong (each non-root PE against PE 0) ----
    if (pe != 0) {
      const int zero = 0;
      void* m = CmiMakeMessage(h_ping, &zero, sizeof(zero));
      CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
    }

    // ---- phases 2+3 driven from PE 0 ----
    if (pe == 0) {
      for (int i = 0; i < want_bcasts; ++i) {
        const bool big = i >= kSmallBcasts;
        const std::size_t body = big ? kBigBytes : 64;
        const unsigned seed = 0x5eedu + static_cast<unsigned>(i);
        void* m = CmiAlloc(static_cast<std::size_t>(
                               CmiMsgHeaderSizeBytes()) +
                           sizeof(seed) + body);
        CmiSetHandler(m, h_bcast);
        std::memcpy(CmiMsgPayload(m), &seed, sizeof(seed));
        FillPattern(static_cast<unsigned char*>(CmiMsgPayload(m)) +
                        sizeof(seed),
                    body, seed);
        CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
      }
      for (int i = 0; i < kSeeds; ++i) {
        void* m = CmiAlloc(static_cast<std::size_t>(
                               CmiMsgHeaderSizeBytes()) +
                           64);
        CmiSetHandler(m, h_seed);
        CldEnqueue(m);
      }
    }

    // Run until PE 0's exit broadcast lands everywhere.
    CsdScheduler(-1);
  });

  if (g_failures.load() != 0) {
    std::fprintf(stderr, "transport_smoke: FAILED (%d payload mismatches)\n",
                 g_failures.load());
    return 1;
  }
  std::printf("transport_smoke: ok\n");
  return 0;
}
