// Prioritized scheduling in action (paper §2.3): "branch-and-bound
// problems, where the lower-bound of a node must be used as a priority to
// get good speedups."
//
// A 0/1-knapsack branch-and-bound where every tree node is a chare seed
// whose scheduler priority is its negated optimistic bound, so the most
// promising subtrees are explored first.  The same search also runs with
// plain FIFO scheduling; the run reports how many nodes each policy
// expanded before proving optimality — the paper's argument, quantified.
//
// Run: ./examples/branch_and_bound [npes] [items]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "converse/converse.h"
#include "converse/util/rng.h"

using namespace converse;

namespace {

struct Item {
  int weight;
  int value;
};

std::vector<Item> MakeItems(int n) {
  util::Xoshiro256 rng(12345);
  std::vector<Item> items(static_cast<std::size_t>(n));
  for (auto& it : items) {
    it.weight = 1 + static_cast<int>(rng.Below(20));
    it.value = 1 + static_cast<int>(rng.Below(30));
  }
  return items;
}

struct NodeWire {
  std::int32_t depth;
  std::int32_t weight;
  std::int32_t value;
  std::uint32_t path;  // branching decisions, MSB-first (bit-vector prio)
};

enum class Policy { kFifo, kIntPrio, kBitvec };

const char* PolicyName(Policy p) {
  switch (p) {
    case Policy::kFifo: return "fifo scheduling:    ";
    case Policy::kIntPrio: return "best-first priority:";
    case Policy::kBitvec: return "bit-vector priority:";
  }
  return "?";
}

struct SearchResult {
  long nodes_expanded = 0;
  int best_value = 0;
};

/// Run the whole search on `npes` PEs; returns nodes expanded + optimum.
SearchResult RunSearch(int npes, const std::vector<Item>& items,
                       int capacity, Policy policy) {
  std::atomic<long> expanded{0};
  std::atomic<int> best{0};
  std::atomic<long> inflight{0};

  RunConverse(npes, [&](int pe, int np) {
    // Optimistic bound: current value + all remaining values (loose but
    // admissible — it keeps the example small).
    auto bound = [&items](const NodeWire& n) {
      int b = n.value;
      for (std::size_t i = static_cast<std::size_t>(n.depth);
           i < items.size(); ++i) {
        b += items[i].value;
      }
      return b;
    };

    int node_handler = -1;
    auto spawn = [&](const NodeWire& child) {
      inflight.fetch_add(1);
      void* msg = CmiMakeMessage(node_handler, &child, sizeof(child));
      // Spread work round-robin; the interesting knob is the *priority*.
      const int dest = static_cast<int>(
          (child.depth + child.weight) % np);
      if (policy == Policy::kIntPrio) {
        detail::Header(msg)->int_prio = -bound(child);
      }
      // Send to dest; its network handler queues with the priority.
      CmiSyncSendAndFree(static_cast<unsigned>(dest), CmiMsgTotalSize(msg),
                         msg);
    };

    int queued_handler = CmiRegisterHandler([&](void* msg) {
      NodeWire n;
      std::memcpy(&n, CmiMsgPayload(msg), sizeof(n));
      CmiFree(msg);
      expanded.fetch_add(1);
      // Prune against the best known solution.
      int cur_best = best.load();
      if (bound(n) <= cur_best) {
        if (inflight.fetch_sub(1) == 1) ConverseBroadcastExit();
        return;
      }
      if (n.depth == static_cast<int>(items.size())) {
        while (n.value > cur_best &&
               !best.compare_exchange_weak(cur_best, n.value)) {
        }
        if (inflight.fetch_sub(1) == 1) ConverseBroadcastExit();
        return;
      }
      const Item& it = items[static_cast<std::size_t>(n.depth)];
      // Branch: take the item (if it fits, path bit 0), or skip (bit 1).
      // With bit-vector priorities this makes scheduling follow the
      // depth-first "take items greedily" order — the §2.3 mechanism for
      // consistent, monotonic search behavior.
      if (n.weight + it.weight <= capacity) {
        spawn(NodeWire{n.depth + 1, n.weight + it.weight,
                       n.value + it.value, n.path << 1});
      }
      spawn(NodeWire{n.depth + 1, n.weight, n.value,
                     (n.path << 1) | 1u});
      if (inflight.fetch_sub(1) == 1) ConverseBroadcastExit();
    });

    node_handler = CmiRegisterHandler([&, queued_handler](void* msg) {
      // Network side: re-enqueue through the scheduler with the node's
      // priority (the §3.3 second-handler idiom).
      CmiGrabBuffer(&msg);
      CmiSetHandler(msg, queued_handler);
      switch (policy) {
        case Policy::kIntPrio:
          CsdEnqueueIntPrio(msg, detail::Header(msg)->int_prio);
          break;
        case Policy::kBitvec: {
          NodeWire n;
          std::memcpy(&n, CmiMsgPayload(msg), sizeof(n));
          // MSB-align the path bits: depth bits, lexicographic order.
          const std::uint32_t word =
              n.depth > 0 ? n.path << (32 - n.depth) : 0;
          CsdEnqueueBitvecPrio(msg, &word, n.depth);
          break;
        }
        case Policy::kFifo:
          CsdEnqueue(msg);
          break;
      }
    });

    if (pe == 0) {
      spawn(NodeWire{0, 0, 0, 0});
    }
    CsdScheduler(-1);
  });

  return SearchResult{expanded.load(), best.load()};
}

}  // namespace

int main(int argc, char** argv) {
  const int npes = argc > 1 ? std::atoi(argv[1]) : 2;
  const int nitems = argc > 2 ? std::atoi(argv[2]) : 18;
  const auto items = MakeItems(nitems);
  int total_weight = 0;
  for (const auto& it : items) total_weight += it.weight;
  const int capacity = total_weight / 3;

  std::printf("branch&bound: 0/1 knapsack, %d items, capacity %d, %d PEs\n",
              nitems, capacity, npes);

  SearchResult results[3];
  const Policy policies[3] = {Policy::kFifo, Policy::kIntPrio,
                              Policy::kBitvec};
  for (int i = 0; i < 3; ++i) {
    results[i] = RunSearch(npes, items, capacity, policies[i]);
    std::printf("  %s optimum %d, %ld nodes expanded\n",
                PolicyName(policies[i]), results[i].best_value,
                results[i].nodes_expanded);
  }
  if (results[0].best_value != results[1].best_value ||
      results[0].best_value != results[2].best_value) {
    std::printf("ERROR: policies disagree on the optimum!\n");
    return 1;
  }
  std::printf("  best-first explored %.1f%%, bit-vector %.1f%% of the FIFO "
              "node count\n",
              100.0 * results[1].nodes_expanded / results[0].nodes_expanded,
              100.0 * results[2].nodes_expanded / results[0].nodes_expanded);
  return 0;
}
