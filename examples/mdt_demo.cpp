// The §4 coordination language, used as a user would: a fan-out of
// message-driven threads computing a streaming histogram.  Threads are
// created dynamically (placement left to the seed load balancer), send
// single-tag messages, and block for specific tags — the complete surface
// of the little language the paper says took a day to build on Converse.
//
// Run: ./examples/mdt_demo [npes] [values]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "converse/converse.h"
#include "converse/langs/mdt.h"
#include "converse/util/rng.h"

using namespace converse;
using namespace converse::mdt;

namespace {

constexpr int kTagIntro = 0;  // bucket -> sink: here is my id
constexpr int kTagBatch = 1;  // sink -> bucket: batch of samples (0 = end)
constexpr int kTagCount = 2;  // bucket -> sink: final count
constexpr int kBuckets = 8;

}  // namespace

int main(int argc, char** argv) {
  const int npes = argc > 1 ? std::atoi(argv[1]) : 3;
  const long nvalues = argc > 2 ? std::atol(argv[2]) : 20000;

  RunConverse(npes, [nvalues](int pe, int) {
    CldSetStrategy(CldStrategy::kRandom);

    // A bucket thread: introduces itself to the sink, accumulates batch
    // counts until the zero end-marker, reports its total.
    const int bucket_fn = MdtRegister([](const void* arg, std::size_t) {
      MdtThreadId sink;
      std::memcpy(&sink, arg, sizeof(sink));
      const MdtThreadId me = MdtSelf();
      MdtSend(sink, kTagIntro, &me, sizeof(me));
      long count = 0;
      for (;;) {
        long batch = 0;
        MdtRecv(kTagBatch, &batch, sizeof(batch));
        if (batch == 0) break;
        count += batch;
      }
      CmiPrintf("mdt: bucket %u on pe %d counted %ld samples\n",
                static_cast<unsigned>(me & 0xffffffffu), CmiMyPe(), count);
      MdtSend(sink, kTagCount, &count, sizeof(count));
    });

    // The sink: spawns the buckets anywhere (the seed balancer places
    // them), learns their ids from intro messages, streams batched
    // samples, and totals the replies.
    const int sink_fn = MdtRegister([nvalues, bucket_fn](const void*,
                                                         std::size_t) {
      const MdtThreadId me = MdtSelf();
      for (int b = 0; b < kBuckets; ++b) {
        MdtSpawn(bucket_fn, &me, sizeof(me));  // kAnyPe: balancer decides
      }
      MdtThreadId buckets[kBuckets];
      for (int b = 0; b < kBuckets; ++b) {
        MdtRecv(kTagIntro, &buckets[b], sizeof(buckets[b]));
      }
      util::Xoshiro256 rng(99);
      long batched[kBuckets] = {};
      for (long i = 0; i < nvalues; ++i) {
        const auto b = static_cast<int>(rng.Below(kBuckets));
        if (++batched[b] == 16) {
          MdtSend(buckets[b], kTagBatch, &batched[b], sizeof(long));
          batched[b] = 0;
        }
      }
      for (int b = 0; b < kBuckets; ++b) {
        if (batched[b] > 0) {
          MdtSend(buckets[b], kTagBatch, &batched[b], sizeof(long));
        }
        const long end_marker = 0;
        MdtSend(buckets[b], kTagBatch, &end_marker, sizeof(end_marker));
      }
      long total = 0;
      for (int b = 0; b < kBuckets; ++b) {
        long c = 0;
        MdtRecv(kTagCount, &c, sizeof(c));
        total += c;
      }
      CmiPrintf("mdt: total %ld (expected %ld) across %d buckets on %d "
                "PEs\n", total, nvalues, kBuckets, CmiNumPes());
      ConverseBroadcastExit();
    });

    if (pe == 0) MdtSpawnLocal(sink_fn, nullptr, 0);
    CsdScheduler(-1);
  });
  std::printf("mdt_demo: done\n");
  return 0;
}
