// The paper's §4 motivating example, in miniature: a Fast-Multipole-style
// tree code in which each phase uses the paradigm that fits it —
//
//   phase 1  tree construction         SPM module (loosely synchronous,
//                                      collectives for the bounding box)
//   phase 2  all-to-all particle       message-driven handlers: "we would
//            exchange                  like to continue execution of each
//                                      cell as soon as all of its
//                                      particles have arrived"
//   phase 3  per-cell logic            threads communicating along the
//                                      edges of the tree (tSM messages)
//
// The physics is reduced to center-of-mass aggregation up a two-level
// quadtree; the interoperability structure is the point.
//
// Run: ./examples/fma_tree [npes] [particles-per-pe]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "converse/converse.h"
#include "converse/langs/tsm.h"
#include "converse/util/rng.h"

using namespace converse;

namespace {

struct Particle {
  double x, y, mass;
};

struct Com {  // a (possibly partial) center of mass
  double mass = 0, mx = 0, my = 0;
  void Absorb(const Com& o) {
    mass += o.mass;
    mx += o.mx;
    my += o.my;
  }
  void Absorb(const Particle& p) {
    mass += p.mass;
    mx += p.x * p.mass;
    my += p.y * p.mass;
  }
};

constexpr int kGrid = 4;                    // 4x4 leaf cells
constexpr int kLeaves = kGrid * kGrid;      // 16 leaves
constexpr int kParents = 4;                 // 2x2 interior cells
constexpr int kTagLeafCom = 2000;           // leaf -> parent (+ parent id)
constexpr int kTagParentCom = 3000;         // parent -> root
constexpr int kTagResult = 4000;            // root -> everyone

int LeafOwner(int leaf, int npes) { return leaf % npes; }
int ParentOwner(int parent, int npes) { return parent % npes; }
int ParentOf(int leaf) {
  const int cx = leaf % kGrid, cy = leaf / kGrid;
  return (cy / 2) * 2 + (cx / 2);
}

struct ExchangeWire {
  std::int32_t cell;
  std::int32_t count;
  // `count` Particles follow
};

}  // namespace

int main(int argc, char** argv) {
  const int npes = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_pe = argc > 2 ? std::atoi(argv[2]) : 2000;

  RunConverse(npes, [per_pe](int pe, int np) {
    // ---- Per-cell state on this PE (owner side of phase 2) ----
    struct CellState {
      std::vector<Particle> particles;
      int reports = 0;  // PEs that have sent their share
    };
    std::vector<CellState> cells(kLeaves);

    // Phase-3 thread bodies, defined up front so the phase-2 handler can
    // start a cell's thread the moment its data is complete.
    auto leaf_thread = [np](int leaf, std::vector<Particle> ps) {
      Com com;
      for (const Particle& p : ps) com.Absorb(p);
      // Send my center of mass along the tree edge to my parent's thread.
      tsm::tSMSend(ParentOwner(ParentOf(leaf), np),
                   kTagLeafCom + ParentOf(leaf), &com, sizeof(com));
    };

    // ---- Phase 2 handler: particles arriving for cells I own ----
    int exchange = CmiRegisterHandler([&cells, leaf_thread, np](void* msg) {
      const auto* wire = static_cast<const ExchangeWire*>(CmiMsgPayload(msg));
      CellState& cs = cells[static_cast<std::size_t>(wire->cell)];
      const auto* ps = reinterpret_cast<const Particle*>(wire + 1);
      cs.particles.insert(cs.particles.end(), ps, ps + wire->count);
      if (++cs.reports == np) {
        // All PEs have reported for this cell: its logic can start NOW,
        // overlapped with other cells' still-incomplete exchanges.
        const int leaf = wire->cell;
        auto particles = std::move(cs.particles);
        tsm::tSMCreate([leaf_thread, leaf,
                        particles = std::move(particles)]() mutable {
          leaf_thread(leaf, std::move(particles));
        });
      }
    });

    // ================= Phase 1: SPM tree construction =================
    // Generate particles and agree on the global bounding box with
    // blocking collectives — classic loosely synchronous SPMD.
    util::Xoshiro256 rng(42 + static_cast<unsigned>(pe));
    std::vector<Particle> mine(static_cast<std::size_t>(per_pe));
    for (auto& p : mine) {
      p.x = rng.NextDouble() * 100.0;
      p.y = rng.NextDouble() * 100.0;
      p.mass = 1.0 + rng.NextDouble();
    }
    double lo[2] = {1e30, 1e30}, hi[2] = {-1e30, -1e30};
    for (const auto& p : mine) {
      lo[0] = std::min(lo[0], p.x);
      lo[1] = std::min(lo[1], p.y);
      hi[0] = std::max(hi[0], p.x);
      hi[1] = std::max(hi[1], p.y);
    }
    CmiAllReduceBlocking(lo, sizeof(lo), CmiReducerMinF64());
    CmiAllReduceBlocking(hi, sizeof(hi), CmiReducerMaxF64());
    const double w = (hi[0] - lo[0]) / kGrid, h = (hi[1] - lo[1]) / kGrid;
    if (pe == 0) {
      CmiPrintf("fma: bbox [%.1f,%.1f]x[%.1f,%.1f], %d leaves on %d PEs\n",
                lo[0], hi[0], lo[1], hi[1], kLeaves, np);
    }

    // ================= Phase 2: message-driven exchange ================
    // Partition my particles by destination cell and ship each bucket to
    // the cell's owner (empty buckets too: they carry the "I'm done with
    // this cell" information).
    std::vector<std::vector<Particle>> buckets(kLeaves);
    for (const auto& p : mine) {
      int cx = static_cast<int>((p.x - lo[0]) / w);
      int cy = static_cast<int>((p.y - lo[1]) / h);
      cx = std::min(cx, kGrid - 1);
      cy = std::min(cy, kGrid - 1);
      buckets[static_cast<std::size_t>(cy * kGrid + cx)].push_back(p);
    }
    for (int c = 0; c < kLeaves; ++c) {
      const auto& b = buckets[static_cast<std::size_t>(c)];
      const std::size_t bytes = sizeof(ExchangeWire) + b.size() * sizeof(Particle);
      void* msg = CmiAlloc(CmiMsgHeaderSizeBytes() + bytes);
      CmiSetHandler(msg, exchange);
      auto* wire = static_cast<ExchangeWire*>(CmiMsgPayload(msg));
      wire->cell = c;
      wire->count = static_cast<std::int32_t>(b.size());
      if (!b.empty()) {
        std::memcpy(wire + 1, b.data(), b.size() * sizeof(Particle));
      }
      CmiSyncSendAndFree(LeafOwner(c, np), CmiMsgTotalSize(msg), msg);
    }

    // ============== Phase 3: threads along the tree edges ==============
    // Parent-cell threads (one per interior cell) aggregate their four
    // leaves; the root thread aggregates the parents and broadcasts.
    for (int par = 0; par < kParents; ++par) {
      if (ParentOwner(par, np) != pe) continue;
      tsm::tSMCreate([par, np] {
        Com acc;
        for (int k = 0; k < 4; ++k) {  // four children per parent
          Com child;
          tsm::tSMReceive(kTagLeafCom + par, &child, sizeof(child));
          acc.Absorb(child);
        }
        tsm::tSMSend(0, kTagParentCom, &acc, sizeof(acc));
      });
    }
    if (pe == 0) {
      tsm::tSMCreate([np] {
        Com total;
        for (int k = 0; k < kParents; ++k) {
          Com part;
          tsm::tSMReceive(kTagParentCom, &part, sizeof(part));
          total.Absorb(part);
        }
        const double gx = total.mx / total.mass;
        const double gy = total.my / total.mass;
        CmiPrintf("fma: total mass %.1f, center of mass (%.2f, %.2f)\n",
                  total.mass, gx, gy);
        const double result[2] = {gx, gy};
        for (int p = 0; p < np; ++p) {
          tsm::tSMSend(p, kTagResult, result, sizeof(result));
        }
      });
    }

    // Every PE (SPM control again) waits for the broadcast result, letting
    // the scheduler run handlers and threads in the meantime: the explicit
    // and implicit regimes interleaving exactly as §3.1.2 describes.
    tsm::tSMCreate([pe] {
      double result[2];
      tsm::tSMReceive(kTagResult, result, sizeof(result));
      CmiPrintf("pe %d: received global center of mass (%.2f, %.2f)\n", pe,
                result[0], result[1]);
      ConverseBroadcastExit();
    });
    CsdScheduler(-1);
  });
  std::printf("fma_tree: done\n");
  return 0;
}
