// Classic SPMD stencil in the explicit control regime (paper §2.2): a 1-D
// heat equation solved with Jacobi iteration on a block-distributed array
// using the dp data-parallel layer (halo exchange + global reductions).
// Every PE executes the same loosely synchronous program — no scheduler
// interaction is visible to the application at all, which is exactly what
// "languages pay only for what they use" means for SPMD codes.
//
// Run: ./examples/jacobi_dp [npes] [n] [iters]
#include <cstdio>
#include <cstdlib>

#include "converse/converse.h"
#include "converse/langs/dp.h"

using namespace converse;

int main(int argc, char** argv) {
  const int npes = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t n = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 4096;
  const int iters = argc > 3 ? std::atoi(argv[3]) : 500;

  RunConverse(npes, [n, iters](int pe, int np) {
    dp::Array1D<double> u(n, np, pe), next(n, np, pe);
    // Boundary conditions: hot left end, cold right end.
    u.ForEach([n](std::size_t i, double& v) {
      v = (i == 0) ? 100.0 : (i == n - 1 ? 0.0 : 0.0);
    });

    const double t0 = CmiTimer();
    for (int it = 0; it < iters; ++it) {
      u.ExchangeHalo();
      const auto& d = u.dist();
      next.ForEach([&](std::size_t i, double& v) {
        if (i == 0 || i == n - 1) {
          v = u[i];
          return;
        }
        const double left = (i - 1 < d.begin()) ? u.left_ghost() : u[i - 1];
        const double right = (i + 1 >= d.end()) ? u.right_ghost() : u[i + 1];
        v = 0.5 * (left + right);
      });
      std::swap(u, next);
    }
    const double elapsed = CmiTimer() - t0;

    const double heat = u.ReduceSum(
        [](std::size_t, const double& v) { return v; });
    if (pe == 0) {
      CmiPrintf("jacobi: n=%zu iters=%d on %d PEs\n", n, iters, np);
      CmiPrintf("jacobi: total heat %.2f, %.1f ms (%.2f us/iter)\n", heat,
                elapsed * 1e3, elapsed * 1e6 / iters);
    }
  });
  std::printf("jacobi_dp: done\n");
  return 0;
}
