// The paper's §4 NAMD scenario: "With Converse it will be possible to use
// the Charm++ version of NAMD with the PVM-based FMA module."
//
// A miniature molecular-dynamics driver written as a Charm-style
// message-driven object (integrator chare per PE region) calls into a
// PVM-style far-field module (SPMD workers) every step, while short-range
// forces are computed locally.  Two pre-existing "libraries" in different
// paradigms, one application — no rewrite of either.
//
// Run: ./examples/namd_interop [npes] [atoms] [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "converse/converse.h"
#include "converse/langs/charm.h"
#include "converse/langs/cpvm.h"
#include "converse/util/rng.h"

using namespace converse;

namespace {

constexpr int kTagWork = 1;
constexpr int kTagForce = 2;
constexpr int kTagShutdown = 3;

struct Atom {
  double x, v;
};

/// ---------------- The "PVM FMA library" (far-field forces) --------------
/// A classic SPMD worker: waits for positions, computes its share of a
/// long-range force approximation (here: attraction to the global mean),
/// replies, repeats until shutdown.  This code knows nothing of Charm.
void FmaWorkerModule() {
  using namespace converse::pvm;
  for (;;) {
    pvm_recv(0, PvmAnyTag);
    int bytes = 0, tag = 0, tid = 0;
    pvm_bufinfo(1, &bytes, &tag, &tid);
    if (tag == kTagShutdown) return;
    auto n = 0;
    pvm_upkint(&n, 1);
    std::vector<double> xs(static_cast<std::size_t>(n));
    pvm_upkdouble(xs.data(), n);
    // Far field ~ force toward the center of "charge".
    double mean = 0;
    for (double x : xs) mean += x;
    mean /= n;
    const int me = pvm_mytid();
    const int workers = pvm_ntasks() - 1;
    std::vector<double> f(static_cast<std::size_t>(n), 0.0);
    for (int i = me - 1; i < n; i += workers) {
      f[static_cast<std::size_t>(i)] =
          0.05 * (mean - xs[static_cast<std::size_t>(i)]);
    }
    pvm_initsend();
    pvm_pkdouble(f.data(), n);
    pvm_send(0, kTagForce);
  }
}

/// --------------- The "Charm NAMD driver" (integrator chare) --------------
struct Integrator : charm::Chare {
  std::vector<Atom> atoms;
  int steps = 0;

  Integrator(const void* arg, std::size_t) {
    int params[2];
    std::memcpy(params, arg, sizeof(params));
    const int n = params[0];
    steps = params[1];
    util::Xoshiro256 rng(7);
    atoms.resize(static_cast<std::size_t>(n));
    for (auto& a : atoms) {
      a.x = rng.NextDouble() * 10.0 - 5.0;
      a.v = 0.0;
    }
  }

  void Step(const void*, std::size_t) {
    using namespace converse::pvm;
    const int n = static_cast<int>(atoms.size());
    // 1. short-range forces: cheap local pairwise springs to neighbors.
    std::vector<double> force(static_cast<std::size_t>(n), 0.0);
    for (int i = 1; i < n; ++i) {
      const double d = atoms[static_cast<std::size_t>(i)].x -
                       atoms[static_cast<std::size_t>(i - 1)].x;
      const double f = -0.1 * (d - 1.0);
      force[static_cast<std::size_t>(i)] += f;
      force[static_cast<std::size_t>(i - 1)] -= f;
    }
    // 2. long-range forces: call the PVM library (its calling convention,
    //    its pack buffers) from inside an entry method.
    std::vector<double> xs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) xs[static_cast<std::size_t>(i)] =
        atoms[static_cast<std::size_t>(i)].x;
    for (int w = 1; w < CmiNumPes(); ++w) {
      pvm_initsend();
      pvm_pkint(&n, 1);
      pvm_pkdouble(xs.data(), n);
      pvm_send(w, kTagWork);
    }
    for (int w = 1; w < CmiNumPes(); ++w) {
      pvm_recv(PvmAnyTid, kTagForce);
      std::vector<double> f(static_cast<std::size_t>(n));
      pvm_upkdouble(f.data(), n);
      for (int i = 0; i < n; ++i) {
        force[static_cast<std::size_t>(i)] += f[static_cast<std::size_t>(i)];
      }
    }
    // 3. integrate.
    double energy = 0;
    for (int i = 0; i < n; ++i) {
      auto& a = atoms[static_cast<std::size_t>(i)];
      a.v += force[static_cast<std::size_t>(i)];
      a.x += a.v;
      energy += 0.5 * a.v * a.v;
    }
    if (--steps > 0) {
      // Message-driven self-invocation: the next step is just a message,
      // so other work (tracing, balancing, other modules) can interleave.
      charm::SendToChare(thisChare(), entry_step, nullptr, 0);
      return;
    }
    CmiPrintf("namd: final kinetic energy %.4f\n", energy);
    using namespace converse::pvm;
    for (int w = 1; w < CmiNumPes(); ++w) {
      pvm_initsend();
      pvm_send(w, kTagShutdown);
    }
    ConverseBroadcastExit();
  }

  static int entry_step;  // registered entry index (same on all PEs)
};

int Integrator::entry_step = -1;

}  // namespace

int main(int argc, char** argv) {
  const int npes = argc > 1 ? std::atoi(argv[1]) : 3;
  const int atoms = argc > 2 ? std::atoi(argv[2]) : 256;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 20;
  if (npes < 2) {
    std::fprintf(stderr, "namd_interop needs at least 2 PEs\n");
    return 1;
  }

  RunConverse(npes, [atoms, steps](int pe, int) {
    const int type = charm::RegisterChareType<Integrator>("integrator");
    Integrator::entry_step =
        charm::RegisterEntryMethod<Integrator>(&Integrator::Step);

    if (pe == 0) {
      const int params[2] = {atoms, steps};
      charm::CreateChare(type, params, sizeof(params), /*on_pe=*/0);
      CsdScheduler(1);  // construct; first chare on PE0 has idx 1
      charm::SendToChare(charm::ChareId{0, 1}, Integrator::entry_step,
                         nullptr, 0);
      CsdScheduler(-1);
    } else {
      // This PE hosts a worker of the PVM library, full stop.
      FmaWorkerModule();
      CsdScheduler(-1);  // wait for the exit broadcast
    }
  });
  std::printf("namd_interop: done\n");
  return 0;
}
