// converse_lint — a static API-misuse scanner for Converse programs.
//
// CciCheck (include/converse/check.h) catches ownership bugs at run time;
// this tool catches the textual shapes of the same bugs before the program
// ever runs.  It is a line-oriented heuristic scanner (regex, not a
// compiler), so it favours precision over recall: every rule targets a
// pattern that is almost always wrong, and any finding can be silenced by
// appending the comment `// converse-lint: allow(<rule>)` (or a bare
// `// converse-lint: allow`) to the offending line, or by placing the same
// comment alone on the line directly above it.
//
// Rules:
//   free-after-send-and-free   CmiFree(p) after CmiSyncSendAndFree(..., p)
//                              in the same scope: ownership already moved.
//   double-free                two CmiFree(p) of the same variable in the
//                              same scope with no intervening reassignment.
//   alloc-without-header       CmiAlloc(<expr>) where <expr> mentions
//                              neither CmiMsgHeaderSizeBytes nor sizeof —
//                              almost always forgets header space.
//   enqueue-delivered-buffer   CsdEnqueue of a handler's message argument
//                              without a CmiGrabBuffer above it.
//   grab-without-deref         CmiGrabBuffer(msg) instead of
//                              CmiGrabBuffer(&msg) (takes void**).
//   cpv-use-before-init        CpvAccess/CsvAccess of a variable that no
//                              CpvInitialize/CsvInitialize in the same file
//                              ever registers: the cell is read before the
//                              runtime (and CciRace) know it exists.
//   handler-register-after-start
//                              CmiRegisterHandler inside a handler body:
//                              registration after the scheduler starts gives
//                              different indices on different PEs.
//   send-uninit-header         CmiSyncSend*/CmiSyncBroadcast* of a raw char
//                              buffer with no CmiInitMsgHeader/CmiSetHandler
//                              above it in scope: the 32-byte header is
//                              garbage on the wire.
//
// Usage: converse_lint <file.cpp> [more files...]
//        converse_lint --list-rules
// Exit status: 0 = clean, 1 = findings, 2 = usage/IO error.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <regex>
#include <set>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* name;
  const char* what;
};

constexpr RuleInfo kRules[] = {
    {"free-after-send-and-free",
     "CmiFree of a pointer already passed to CmiSyncSendAndFree"},
    {"double-free", "two CmiFree calls on the same variable in one scope"},
    {"alloc-without-header",
     "CmiAlloc size expression without CmiMsgHeaderSizeBytes()/sizeof"},
    {"enqueue-delivered-buffer",
     "CsdEnqueue of a delivered message with no CmiGrabBuffer in scope"},
    {"grab-without-deref", "CmiGrabBuffer(p) where p is not &lvalue"},
    {"cpv-use-before-init",
     "CpvAccess/CsvAccess with no CpvInitialize/CsvInitialize in the file"},
    {"handler-register-after-start",
     "CmiRegisterHandler inside a handler body (after scheduler start)"},
    {"send-uninit-header",
     "CmiSyncSend* of a raw buffer never passed to CmiInitMsgHeader/"
     "CmiSetHandler"},
};

/// Strip // and /* */ comments and string literals so identifiers inside
/// them never match, but KEEP a trailing `converse-lint:` comment visible
/// to the suppression check (the caller inspects the raw line for that).
std::string StripCommentsAndStrings(const std::string& line,
                                    bool* in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (*in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        *in_block_comment = false;
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      *in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < line.size() && line[i] != quote) {
        if (line[i] == '\\') ++i;
        ++i;
      }
      continue;
    }
    out.push_back(c);
  }
  return out;
}

bool Suppressed(const std::string& raw_line, const std::string& rule) {
  const auto pos = raw_line.find("converse-lint:");
  if (pos == std::string::npos) return false;
  const std::string tail = raw_line.substr(pos);
  if (tail.find("allow(" + rule + ")") != std::string::npos) return true;
  // A bare "allow" (no rule list) silences every rule on the line.
  const auto allow = tail.find("allow");
  return allow != std::string::npos &&
         tail.find('(', allow) == std::string::npos;
}

/// Track brace depth so "same scope" resets are cheap and approximate.
int BraceDelta(const std::string& code) {
  int d = 0;
  for (const char c : code) {
    if (c == '{') ++d;
    if (c == '}') --d;
  }
  return d;
}

class FileScanner {
 public:
  explicit FileScanner(std::string path) : path_(std::move(path)) {}

  bool Scan(std::vector<Finding>* out) {
    std::ifstream in(path_);
    if (!in) {
      std::fprintf(stderr, "converse_lint: cannot open %s\n", path_.c_str());
      return false;
    }
    static const std::regex send_and_free_re(
        R"(CmiSyncSendAndFree\s*\([^;]*?,\s*([A-Za-z_]\w*)\s*\))");
    static const std::regex free_re(R"(CmiFree\s*\(\s*([A-Za-z_]\w*)\s*\))");
    static const std::regex assign_re(R"(([A-Za-z_]\w*)\s*=[^=])");
    static const std::regex alloc_re(R"(CmiAlloc\s*\(([^;]*)\))");
    static const std::regex enqueue_re(
        R"(Csd(Enqueue\w*|EnqueueGeneral)\s*\(\s*([A-Za-z_]\w*)\s*[,)])");
    static const std::regex grab_bad_re(
        R"(CmiGrabBuffer\s*\(\s*[A-Za-z_]\w*\s*\))");
    static const std::regex cpv_access_re(
        R"(C[ps]vAccess\s*\(\s*([A-Za-z_]\w*)\s*\))");
    // The variable is the last argument (the first is the type, which may
    // itself contain commas/colons — match greedily up to the final comma).
    static const std::regex cpv_init_re(
        R"(C[ps]vInitialize\s*\(.*,\s*([A-Za-z_]\w*)\s*\))");
    // A handler body opens where a single-`void*` parameter list meets a
    // brace; CmiHandler typedefs and declarations have no brace and the
    // conventional two-arg entry signatures have a comma, so neither match.
    static const std::regex handler_sig_re(
        R"(\(\s*void\s*\*\s*[A-Za-z_]\w*\s*\)\s*(\{|$))");
    static const std::regex register_re(R"(CmiRegisterHandler\s*\()");
    static const std::regex char_buf_re(
        R"((?:unsigned\s+)?char\s+([A-Za-z_]\w*)\s*\[)");
    static const std::regex header_init_re(
        R"((?:CmiInitMsgHeader|CmiSetHandler)\s*\(\s*&?\s*([A-Za-z_]\w*))");
    static const std::regex send_last_arg_re(
        R"(CmiSync\w*\s*\([^;]*[(,]\s*([A-Za-z_]\w*)\s*\)\s*;)");

    std::string raw;
    int lineno = 0;
    bool in_block = false;
    std::string pending_allow_;  // comment-only allow line covers the next
    // var -> line of the event, reset when the scope closes or the var is
    // reassigned.  Approximate by design; see the file comment.
    std::vector<std::pair<std::string, int>> sent;   // send-and-free'd vars
    std::vector<std::pair<std::string, int>> freed;  // CmiFree'd vars
    // raw char buffers never blessed by CmiInitMsgHeader/CmiSetHandler
    std::vector<std::pair<std::string, int>> raw_bufs;
    int depth = 0;
    bool saw_grab_in_fn = false;
    // cpv-use-before-init is a whole-file property (the initialize may sit
    // below the access — handlers are usually defined above the entry that
    // initializes), so accesses are buffered and resolved at EOF.
    struct CpvUse {
      std::string raw;
      std::string allow;
      std::string var;
      int line;
    };
    std::vector<CpvUse> cpv_uses;
    std::set<std::string> cpv_inited;
    int handler_depth = 0;  // brace depth of the open handler body, 0 = none
    bool pending_handler_sig = false;  // sig seen, brace expected next line

    while (std::getline(in, raw)) {
      ++lineno;
      const std::string code = StripCommentsAndStrings(raw, &in_block);
      const int delta = BraceDelta(code);
      allow_context_ = pending_allow_;
      const bool comment_only =
          code.find_first_not_of(" \t") == std::string::npos;
      pending_allow_ = (comment_only &&
                        raw.find("converse-lint:") != std::string::npos)
                           ? raw
                           : std::string();

      for (std::sregex_iterator it(code.begin(), code.end(), assign_re), end;
           it != end; ++it) {
        Forget(&sent, (*it)[1]);
        Forget(&freed, (*it)[1]);
      }

      // Preprocessor lines define the Cpv/Csv and handler macros themselves;
      // none of the new rules should fire on a #define.
      const auto first_char = code.find_first_not_of(" \t");
      const bool preprocessor =
          first_char != std::string::npos && code[first_char] == '#';

      std::smatch m;
      if (std::regex_search(code, m, alloc_re)) {
        const std::string arg = m[1];
        std::string lower = arg;
        for (char& c : lower) c = static_cast<char>(std::tolower(c));
        if (lower.find("cmimsgheadersizebytes") == std::string::npos &&
            lower.find("sizeof") == std::string::npos &&
            lower.find("size") == std::string::npos &&
            lower.find("bytes") == std::string::npos &&
            lower.find("len") == std::string::npos) {
          Report(out, raw, lineno, "alloc-without-header",
                 "CmiAlloc(" + arg +
                     ") does not reserve CmiMsgHeaderSizeBytes(); messages "
                     "start with a 32-byte header");
        }
      }

      if (code.find("CmiGrabBuffer") != std::string::npos) {
        saw_grab_in_fn = true;
        if (std::regex_search(code, m, grab_bad_re)) {
          Report(out, raw, lineno, "grab-without-deref",
                 "CmiGrabBuffer takes void** — pass &msg, not msg");
        }
      }

      if (std::regex_search(code, m, enqueue_re)) {
        const std::string var = m[2];
        if ((var == "msg" || var == "buf" || var == "buffer") &&
            !saw_grab_in_fn && InHandlerContext(code)) {
          Report(out, raw, lineno, "enqueue-delivered-buffer",
                 "CsdEnqueue of delivered buffer '" + var +
                     "' without CmiGrabBuffer: the dispatcher will free it "
                     "when the handler returns");
        }
      }

      for (std::sregex_iterator it(code.begin(), code.end(),
                                   send_and_free_re),
           end;
           it != end; ++it) {
        sent.emplace_back((*it)[1], lineno);
      }

      for (std::sregex_iterator it(code.begin(), code.end(), free_re), end;
           it != end; ++it) {
        const std::string var = (*it)[1];
        if (Find(sent, var) != -1) {
          Report(out, raw, lineno, "free-after-send-and-free",
                 "CmiFree(" + var + ") after CmiSyncSendAndFree(..., " +
                     var + ") on line " +
                     std::to_string(Find(sent, var)) +
                     ": ownership already moved to the machine layer");
        } else if (Find(freed, var) != -1) {
          Report(out, raw, lineno, "double-free",
                 "second CmiFree(" + var + "); first free on line " +
                     std::to_string(Find(freed, var)));
        } else {
          freed.emplace_back(var, lineno);
        }
      }

      if (!preprocessor) {
        for (std::sregex_iterator it(code.begin(), code.end(), cpv_access_re),
             end;
             it != end; ++it) {
          cpv_uses.push_back(CpvUse{raw, allow_context_, (*it)[1], lineno});
        }
        if (std::regex_search(code, m, cpv_init_re)) {
          cpv_inited.insert(m[1]);
        }

        // Check registrations BEFORE opening a handler context so that a
        // `CmiRegisterHandler([](void* msg) {` line flags only what is
        // nested inside the lambda, not the registration itself.
        if (handler_depth > 0 && std::regex_search(code, m, register_re)) {
          Report(out, raw, lineno, "handler-register-after-start",
                 "CmiRegisterHandler inside a handler body runs after the "
                 "scheduler started; indices will differ across PEs — "
                 "register from the entry function instead");
        }
        if (pending_handler_sig) {
          pending_handler_sig = false;
          if (handler_depth == 0 && first_char != std::string::npos &&
              code[first_char] == '{') {
            handler_depth = depth + 1;
          }
        }
        if (handler_depth == 0 &&
            std::regex_search(code, m, handler_sig_re)) {
          if (m[1] == "{") {
            handler_depth = depth + 1;
          } else {
            pending_handler_sig = true;  // Allman brace on the next line
          }
        }

        for (std::sregex_iterator it(code.begin(), code.end(), char_buf_re),
             end;
             it != end; ++it) {
          raw_bufs.emplace_back((*it)[1], lineno);
        }
        for (std::sregex_iterator it(code.begin(), code.end(),
                                     header_init_re),
             end;
             it != end; ++it) {
          Forget(&raw_bufs, (*it)[1]);
        }
        if (std::regex_search(code, m, send_last_arg_re)) {
          const std::string var = m[1];
          if (Find(raw_bufs, var) != -1) {
            Report(out, raw, lineno, "send-uninit-header",
                   "send of raw buffer '" + var + "' (declared on line " +
                       std::to_string(Find(raw_bufs, var)) +
                       ") with no CmiInitMsgHeader/CmiSetHandler above it: "
                       "the 32-byte message header is uninitialized");
          }
        }
      }

      depth += delta;
      if (delta < 0) {
        // A scope closed: tracked lifetimes are no longer comparable.
        sent.clear();
        freed.clear();
        raw_bufs.clear();
        if (depth <= 1) saw_grab_in_fn = false;
      }
      if (handler_depth > 0 && depth < handler_depth) handler_depth = 0;
    }

    for (const CpvUse& use : cpv_uses) {
      if (cpv_inited.count(use.var) != 0) continue;
      allow_context_ = use.allow;
      Report(out, use.raw, use.line, "cpv-use-before-init",
             "CpvAccess(" + use.var + ") but no CpvInitialize/CsvInitialize "
             "of '" + use.var + "' anywhere in this file: the cell is never "
             "registered (and for Cpv never zeroed) before use");
    }
    return true;
  }

 private:
  static int Find(const std::vector<std::pair<std::string, int>>& v,
                  const std::string& name) {
    for (const auto& [n, line] : v) {
      if (n == name) return line;
    }
    return -1;
  }

  static void Forget(std::vector<std::pair<std::string, int>>* v,
                     const std::string& name) {
    for (auto it = v->begin(); it != v->end();) {
      it = it->first == name ? v->erase(it) : it + 1;
    }
  }

  static bool InHandlerContext(const std::string& code) {
    // Heuristic: the enqueue names the conventional handler parameter; a
    // top-level CsdEnqueue(msg) of a locally built message is matched by
    // variable name only, so the rule keys on the common names above.
    return code.find("void* msg") == std::string::npos;
  }

  void Report(std::vector<Finding>* out, const std::string& raw, int line,
              const char* rule, const std::string& msg) {
    if (Suppressed(raw, rule)) return;
    if (!allow_context_.empty() && Suppressed(allow_context_, rule)) return;
    out->push_back(Finding{path_, line, rule, msg});
  }

  std::string path_;
  std::string allow_context_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: converse_lint <file.cpp> [more files...]\n"
                 "       converse_lint --list-rules\n");
    return 2;
  }
  if (std::strcmp(argv[1], "--list-rules") == 0) {
    for (const RuleInfo& r : kRules) {
      std::printf("%-28s %s\n", r.name, r.what);
    }
    return 0;
  }
  std::vector<Finding> findings;
  for (int i = 1; i < argc; ++i) {
    FileScanner scanner(argv[i]);
    if (!scanner.Scan(&findings)) return 2;
  }
  for (const Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("converse_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
