// converserun — multi-process launcher for the socket / SMP-node
// transport backends (DESIGN.md "Transport interface").
//
//   converserun -np 4 ./examples/quickstart          # 4 procs x 1 PE (socket)
//   converserun -np 8 -ppn 4 ./examples/quickstart   # 2 procs x 4 PEs (smp)
//
// Forks one OS process per node and points them at each other through the
// CONVERSE_* environment family (see converse/machine.h): every child runs
// the unmodified program binary; RunConverse picks the overrides up and
// hosts only its node's contiguous PE slice, with the socket engine
// carrying inter-node traffic.  Rendezvous is a fresh temporary directory
// of Unix sockets by default, or loopback TCP with --tcp.
//
// Exit status is the first child's failure (or 0); when one child fails,
// the rest are killed so a dead rank cannot wedge the launcher.
//
// Usage:
//   converserun -np N [-ppn K] [--tcp BASEPORT] [--timeout MS] [-v]
//               program [args...]
#include <signal.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s -np N [-ppn K] [--tcp BASEPORT] [--timeout MS] [-v] "
      "program [args...]\n"
      "  -np N         total PEs across all processes\n"
      "  -ppn K        PEs per process (default 1: one process per PE,\n"
      "                socket transport; K>1 selects the two-level\n"
      "                SMP-node transport: threads in-node, sockets "
      "between)\n"
      "  --tcp PORT    rendezvous over loopback TCP from PORT instead of\n"
      "                a temporary directory of unix sockets\n"
      "  --timeout MS  wire timeout (CONVERSE_WIRE_TIMEOUT_MS)\n"
      "  -v            print the per-process environment before launch\n",
      argv0);
}

struct Options {
  int np = 0;
  int ppn = 1;
  int tcp_base = 0;
  int timeout_ms = 0;
  bool verbose = false;
  int prog_index = -1;  // argv index of the program
};

bool ParseArgs(int argc, char** argv, Options* o) {
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-np" || arg == "--np") {
      o->np = std::atoi(next());
    } else if (arg == "-ppn" || arg == "--ppn") {
      o->ppn = std::atoi(next());
    } else if (arg == "--tcp") {
      o->tcp_base = std::atoi(next());
    } else if (arg == "--timeout") {
      o->timeout_ms = std::atoi(next());
    } else if (arg == "-v" || arg == "--verbose") {
      o->verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      return false;
    } else {
      o->prog_index = i;
      return true;
    }
  }
  return false;
}

void SetEnvInt(const char* name, long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  setenv(name, buf, 1);
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!ParseArgs(argc, argv, &o) || o.np < 1 || o.ppn < 1 ||
      o.prog_index < 0) {
    Usage(argv[0]);
    return 2;
  }
  const int nnodes = (o.np + o.ppn - 1) / o.ppn;
  const char* transport = o.ppn > 1 ? "smp" : "socket";

  // Rendezvous directory (unix sockets) unless TCP was requested.
  char rdv[] = "/tmp/converserun.XXXXXX";
  bool have_rdv = false;
  if (o.tcp_base == 0) {
    if (mkdtemp(rdv) == nullptr) {
      std::perror("converserun: mkdtemp");
      return 1;
    }
    have_rdv = true;
  }

  // Environment shared by every child; CONVERSE_NODE is set per fork.
  SetEnvInt("CONVERSE_NPES", o.np);
  SetEnvInt("CONVERSE_NNODES", nnodes);
  setenv("CONVERSE_TRANSPORT", transport, 1);
  if (have_rdv) {
    setenv("CONVERSE_RDV", rdv, 1);
    unsetenv("CONVERSE_TCP_BASE");
  } else {
    SetEnvInt("CONVERSE_TCP_BASE", o.tcp_base);
    unsetenv("CONVERSE_RDV");
  }
  if (o.timeout_ms > 0) SetEnvInt("CONVERSE_WIRE_TIMEOUT_MS", o.timeout_ms);

  if (o.verbose) {
    std::fprintf(stderr,
                 "converserun: %d pes over %d processes (%s transport, "
                 "rendezvous %s)\n",
                 o.np, nnodes, transport,
                 have_rdv ? rdv : "tcp loopback");
  }

  std::vector<pid_t> pids(static_cast<std::size_t>(nnodes), -1);
  for (int node = 0; node < nnodes; ++node) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("converserun: fork");
      for (pid_t p : pids) {
        if (p > 0) kill(p, SIGKILL);
      }
      return 1;
    }
    if (pid == 0) {
      SetEnvInt("CONVERSE_NODE", node);
      execvp(argv[o.prog_index], argv + o.prog_index);
      std::perror("converserun: exec");
      _exit(127);
    }
    pids[static_cast<std::size_t>(node)] = pid;
  }

  int status = 0, exit_code = 0;
  for (int left = nnodes; left > 0; --left) {
    const pid_t pid = waitpid(-1, &status, 0);
    if (pid < 0) break;
    int code = 0;
    if (WIFEXITED(status)) {
      code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      code = 128 + WTERMSIG(status);
    }
    if (code != 0 && exit_code == 0) {
      exit_code = code;
      // One rank failed: take the rest down rather than hang the launch.
      for (pid_t p : pids) {
        if (p > 0 && p != pid) kill(p, SIGTERM);
      }
    }
  }

  if (have_rdv) {
    for (int node = 0; node < nnodes; ++node) {
      std::string sock = std::string(rdv) + "/node" +
                         std::to_string(node) + ".sock";
      unlink(sock.c_str());
    }
    rmdir(rdv);
  }
  return exit_code;
}
