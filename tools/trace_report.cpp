// trace_report — command-line front end for the §3.3.2 tool-support
// format: parses a dump written by converse::TraceDump and prints the
// per-handler profile and utilization timeline.
//
//   usage: trace_report <dump-file> [<dump-file> ...]
//          trace_report -            (read one dump from stdin)
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "converse/trace_report.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace-dump> [...] | -\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::FILE* in =
        std::strcmp(argv[i], "-") == 0 ? stdin : std::fopen(argv[i], "r");
    if (in == nullptr) {
      std::fprintf(stderr, "trace_report: cannot open %s\n", argv[i]);
      ++failures;
      continue;
    }
    try {
      const auto report = converse::tracetool::ParseTrace(in);
      converse::tracetool::PrintReport(report, stdout);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace_report: %s: %s\n", argv[i], e.what());
      ++failures;
    }
    if (in != stdin) std::fclose(in);
  }
  return failures == 0 ? 0 : 1;
}
