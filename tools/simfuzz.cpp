// simfuzz — seed-driven fuzzer for the Converse deterministic simulator.
//
// Runs randomized workloads (converse::sim::RunFuzzCase) under the sim
// backend with optional fault injection, checks the built-in invariant
// oracles, and on failure shrinks the case and prints a one-line replay
// command.  The same seed always produces the same run, so that line is a
// complete bug report.
//
// Usage:
//   simfuzz [--seed N] [--seeds COUNT] [--start N]
//           [--pes N] [--actions N] [--threads N]
//           [--drop P] [--dup P] [--delay P] [--reorder P]
//           [--agg] [--plant-bug] [--trace-hash] [--quiet]
//   simfuzz --race [--seed N] [--seeds COUNT] [--start N] [--pes N]
//           [--chains N] [--hops N] [--plant-race | --plant-benign] [--quiet]
//
// With --seeds COUNT, seeds start..start+COUNT-1 are run and the first
// failure stops the sweep.  Otherwise a single seed is run: --seed, else
// the CONVERSE_SIM_SEED environment variable, else 1.  --trace-hash prints
// the run's event-trace hash (for determinism checks).  Exit status is 0
// iff every run passed its oracles.
//
// --race switches to the CciRace fuzz workload (causally ordered token
// chains that must produce zero reports, optionally with a planted racy
// pair that must be caught and classified; see converse/race.h).  It
// requires a library built with -DCONVERSE_RACE=ON and exits 2 otherwise.
//
// --service switches to the request/response service workload
// (converse/svc.h) checked against its request-conservation oracles: every
// admitted request yields exactly one reply or one shed notice, timers
// conserve, and total message flow balances against the injector's exact
// drop/duplicate counts.  --plant-lost-reply plants a silently dropped
// reply that the oracle must catch (the CI self-test).
//
// --ldb switches to the seed load-balancer workload (converse/cld.h): a
// skewed, wave-structured seed burst run under one of the six CldStrategy
// values (--strategy 0..5, or drawn from the seed when omitted), checked
// against the balancer's conservation oracles — the stealable backlog
// drains exactly, balancer+workload message flow balances against the
// injector's counts, and on clean schedules every spawned seed executes
// exactly once.  --plant-lost-steal-reply plants a silently dropped steal
// reply whose packed seeds vanish; the oracles must catch and shrink it
// (the CI self-test).
//
// --transport switches to the transport-layer workload
// (converse/transport.h): a loopback multi-node machine whose inter-node
// traffic crosses the virtual wire, with deterministic disconnect
// injection, checked against wire conservation (delivered == sent -
// wire_dropped; immediates never dropped).  --nodes picks the node count
// (== --pes gives the socket one-PE-per-node shape), --disconnect /
// --lost shape the injector, and --plant-lost plants a silent one-record
// loss the oracle must catch (the CI self-test).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "converse/cld.h"
#include "converse/sim.h"
#include "converse/svc.h"
#include "converse/transport.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--seeds COUNT] [--start N] [--pes N]\n"
      "          [--actions N] [--threads N] [--drop P] [--dup P]\n"
      "          [--delay P] [--reorder P] [--agg] [--plant-bug]\n"
      "          [--trace-hash] [--quiet]\n"
      "       %s --race [--seed N] [--seeds COUNT] [--start N] [--pes N]\n"
      "          [--chains N] [--hops N] [--plant-race | --plant-benign]\n"
      "          [--quiet]\n"
      "       %s --service [--seed N] [--seeds COUNT] [--start N] [--pes N]\n"
      "          [--sessions N] [--workers N] [--requests N] [--rate R]\n"
      "          [--qcap N] [--drop P] [--dup P] [--delay P] [--reorder P]\n"
      "          [--plant-lost-reply] [--trace-hash] [--quiet]\n"
      "       %s --ldb [--seed N] [--seeds COUNT] [--start N] [--pes N]\n"
      "          [--strategy 0..5] [--lseeds N] [--waves N] [--prio-frac F]\n"
      "          [--drop P] [--dup P] [--delay P] [--reorder P]\n"
      "          [--plant-lost-steal-reply] [--trace-hash] [--quiet]\n"
      "       %s --transport [--seed N] [--seeds COUNT] [--start N]\n"
      "          [--pes N] [--nodes N] [--actions N] [--disconnect P]\n"
      "          [--lost N] [--agg] [--plant-lost] [--trace-hash] [--quiet]\n",
      argv0, argv0, argv0, argv0, argv0);
}

bool RunOne(const converse::sim::FuzzParams& params, bool trace_hash,
            bool quiet) {
  converse::sim::FuzzResult res = converse::sim::RunFuzzCase(params);
  if (trace_hash) {
    std::printf("%016llx\n",
                static_cast<unsigned long long>(res.report.trace_hash));
  }
  if (res.ok) {
    if (!quiet) {
      std::printf(
          "seed %llu: ok (%llu events, %llu switches, virtual time %.0f us, "
          "faults: %llu dropped, %llu duplicated, %llu delayed, "
          "%llu reordered, agg: %llu frames / %llu batched)\n",
          static_cast<unsigned long long>(params.seed),
          static_cast<unsigned long long>(res.report.events),
          static_cast<unsigned long long>(res.report.context_switches),
          res.report.final_virtual_us,
          static_cast<unsigned long long>(res.report.msgs_dropped),
          static_cast<unsigned long long>(res.report.msgs_duplicated),
          static_cast<unsigned long long>(res.report.msgs_delayed),
          static_cast<unsigned long long>(res.report.msgs_reordered),
          static_cast<unsigned long long>(res.report.agg_frames),
          static_cast<unsigned long long>(res.report.agg_msgs_batched));
    }
    return true;
  }
  std::fprintf(stderr, "seed %llu: FAILED: %s\n",
               static_cast<unsigned long long>(params.seed),
               res.failure.c_str());
  std::fprintf(stderr, "minimizing...\n");
  const converse::sim::FuzzParams small = converse::sim::Minimize(params);
  converse::sim::FuzzResult small_res = converse::sim::RunFuzzCase(small);
  std::fprintf(stderr, "minimized failure: %s\n",
               small_res.ok ? res.failure.c_str() : small_res.failure.c_str());
  std::fprintf(stderr, "replay with:\n  %s\n",
               converse::sim::FormatReplay(small_res.ok ? params : small)
                   .c_str());
  return false;
}

bool RunOneService(const converse::svc::SvcFuzzParams& params,
                   bool trace_hash, bool quiet) {
  converse::svc::SvcFuzzResult res = converse::svc::RunSvcFuzzCase(params);
  if (trace_hash) {
    std::printf("%016llx\n",
                static_cast<unsigned long long>(res.report.trace_hash));
  }
  if (res.ok) {
    if (!quiet) {
      std::printf(
          "seed %llu: ok (%llu requests: %llu completed, %llu shed, "
          "virtual time %.0f us, faults: %llu dropped, %llu duplicated, "
          "%llu delayed, %llu reordered)\n",
          static_cast<unsigned long long>(params.seed),
          static_cast<unsigned long long>(res.totals.requests_sent),
          static_cast<unsigned long long>(res.totals.completed),
          static_cast<unsigned long long>(res.totals.shed_queue +
                                          res.totals.shed_deadline),
          res.report.final_virtual_us,
          static_cast<unsigned long long>(res.report.msgs_dropped),
          static_cast<unsigned long long>(res.report.msgs_duplicated),
          static_cast<unsigned long long>(res.report.msgs_delayed),
          static_cast<unsigned long long>(res.report.msgs_reordered));
    }
    return true;
  }
  std::fprintf(stderr, "seed %llu: FAILED: %s\n",
               static_cast<unsigned long long>(params.seed),
               res.failure.c_str());
  std::fprintf(stderr, "minimizing...\n");
  const converse::svc::SvcFuzzParams small =
      converse::svc::MinimizeSvc(params);
  converse::svc::SvcFuzzResult small_res =
      converse::svc::RunSvcFuzzCase(small);
  std::fprintf(stderr, "minimized failure: %s\n",
               small_res.ok ? res.failure.c_str()
                            : small_res.failure.c_str());
  std::fprintf(stderr, "replay with:\n  %s\n",
               converse::svc::FormatSvcReplay(small_res.ok ? params : small)
                   .c_str());
  return false;
}

bool RunOneLdb(const converse::ldb::LdbFuzzParams& params, bool trace_hash,
               bool quiet) {
  converse::ldb::LdbFuzzResult res = converse::ldb::RunLdbFuzzCase(params);
  if (trace_hash) {
    std::printf("%016llx\n",
                static_cast<unsigned long long>(res.report.trace_hash));
  }
  if (res.ok) {
    if (!quiet) {
      std::printf(
          "seed %llu: ok (strategy %d, %llu seeds: %llu stolen, "
          "%llu rebalanced, virtual time %.0f us, faults: %llu dropped, "
          "%llu duplicated, %llu delayed, %llu reordered)\n",
          static_cast<unsigned long long>(params.seed), res.strategy,
          static_cast<unsigned long long>(res.spawned),
          static_cast<unsigned long long>(res.totals.stolen_in),
          static_cast<unsigned long long>(res.totals.rebalanced_out),
          res.report.final_virtual_us,
          static_cast<unsigned long long>(res.report.msgs_dropped),
          static_cast<unsigned long long>(res.report.msgs_duplicated),
          static_cast<unsigned long long>(res.report.msgs_delayed),
          static_cast<unsigned long long>(res.report.msgs_reordered));
    }
    return true;
  }
  std::fprintf(stderr, "seed %llu: FAILED: %s\n",
               static_cast<unsigned long long>(params.seed),
               res.failure.c_str());
  std::fprintf(stderr, "minimizing...\n");
  const converse::ldb::LdbFuzzParams small =
      converse::ldb::MinimizeLdb(params);
  converse::ldb::LdbFuzzResult small_res =
      converse::ldb::RunLdbFuzzCase(small);
  std::fprintf(stderr, "minimized failure: %s\n",
               small_res.ok ? res.failure.c_str()
                            : small_res.failure.c_str());
  std::fprintf(stderr, "replay with:\n  %s\n",
               converse::ldb::FormatLdbReplay(small_res.ok ? params : small)
                   .c_str());
  return false;
}

bool RunOneTransport(const converse::transport::TransportFuzzParams& params,
                     bool trace_hash, bool quiet) {
  converse::transport::TransportFuzzResult res =
      converse::transport::RunTransportFuzzCase(params);
  if (trace_hash) {
    std::printf("%016llx\n",
                static_cast<unsigned long long>(res.report.trace_hash));
  }
  if (res.ok) {
    if (!quiet) {
      std::printf(
          "seed %llu: ok (%d pes / %d nodes, %llu wire records, "
          "%llu dropped, %llu reconnects, virtual time %.0f us)\n",
          static_cast<unsigned long long>(params.seed), params.npes,
          params.nnodes,
          static_cast<unsigned long long>(res.wire_frames_sent),
          static_cast<unsigned long long>(res.wire_dropped),
          static_cast<unsigned long long>(res.wire_reconnects),
          res.report.final_virtual_us);
    }
    return true;
  }
  std::fprintf(stderr, "seed %llu: FAILED: %s\n",
               static_cast<unsigned long long>(params.seed),
               res.failure.c_str());
  std::fprintf(stderr, "minimizing...\n");
  const converse::transport::TransportFuzzParams small =
      converse::transport::MinimizeTransport(params);
  converse::transport::TransportFuzzResult small_res =
      converse::transport::RunTransportFuzzCase(small);
  std::fprintf(stderr, "minimized failure: %s\n",
               small_res.ok ? res.failure.c_str()
                            : small_res.failure.c_str());
  std::fprintf(
      stderr, "replay with:\n  %s\n",
      converse::transport::FormatTransportReplay(small_res.ok ? params
                                                              : small)
          .c_str());
  return false;
}

bool RunOneRace(const converse::sim::RaceFuzzParams& params, bool quiet) {
  converse::sim::RaceFuzzResult res = converse::sim::RunRaceFuzzCase(params);
  if (res.ok) {
    if (!quiet) {
      std::printf(
          "seed %llu: ok (%d candidate(s): %d divergent, %d benign, "
          "%d unreplayable)\n",
          static_cast<unsigned long long>(params.seed), res.candidates,
          res.divergent, res.benign, res.unreplayable);
    }
    return true;
  }
  std::fprintf(stderr, "seed %llu: FAILED: %s\n",
               static_cast<unsigned long long>(params.seed),
               res.failure.c_str());
  std::fprintf(stderr, "replay with:\n  %s\n",
               converse::sim::FormatRaceReplay(params).c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  converse::sim::FuzzParams params;
  converse::sim::RaceFuzzParams race_params;
  converse::svc::SvcFuzzParams svc_params;
  converse::ldb::LdbFuzzParams ldb_params;
  converse::transport::TransportFuzzParams tr_params;
  unsigned long long seeds = 1, start = 1;
  bool explicit_seed = false, sweep = false;
  bool trace_hash = false, quiet = false, race = false, service = false;
  bool ldb = false, transport = false;

  if (const char* env = std::getenv("CONVERSE_SIM_SEED")) {
    params.seed = std::strtoull(env, nullptr, 10);
    explicit_seed = true;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      params.seed = std::strtoull(next(), nullptr, 10);
      explicit_seed = true;
    } else if (arg == "--seeds") {
      seeds = std::strtoull(next(), nullptr, 10);
      sweep = true;
    } else if (arg == "--start") {
      start = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--pes") {
      params.npes = std::atoi(next());
      race_params.npes = params.npes;
      svc_params.npes = params.npes;
      ldb_params.npes = params.npes;
      tr_params.npes = params.npes;
    } else if (arg == "--actions") {
      params.actions = std::atoi(next());
      tr_params.actions = params.actions;
    } else if (arg == "--threads") {
      params.threads = std::atoi(next());
    } else if (arg == "--drop") {
      params.faults.drop = std::atof(next());
      svc_params.faults.drop = params.faults.drop;
      ldb_params.faults.drop = params.faults.drop;
    } else if (arg == "--dup") {
      params.faults.dup = std::atof(next());
      svc_params.faults.dup = params.faults.dup;
      ldb_params.faults.dup = params.faults.dup;
    } else if (arg == "--delay") {
      params.faults.delay = std::atof(next());
      svc_params.faults.delay = params.faults.delay;
      ldb_params.faults.delay = params.faults.delay;
    } else if (arg == "--reorder") {
      params.faults.reorder = std::atof(next());
      svc_params.faults.reorder = params.faults.reorder;
      ldb_params.faults.reorder = params.faults.reorder;
    } else if (arg == "--ldb") {
      ldb = true;
    } else if (arg == "--strategy") {
      ldb_params.strategy = std::atoi(next());
    } else if (arg == "--lseeds") {
      ldb_params.seeds_per_pe = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--waves") {
      ldb_params.waves = std::atoi(next());
    } else if (arg == "--prio-frac") {
      ldb_params.prio_fraction = std::atof(next());
    } else if (arg == "--plant-lost-steal-reply") {
      ldb_params.plant_lost_steal_reply = true;
    } else if (arg == "--service") {
      service = true;
    } else if (arg == "--sessions") {
      svc_params.sessions = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--workers") {
      svc_params.workers = std::atoi(next());
    } else if (arg == "--requests") {
      svc_params.requests_per_pe = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--rate") {
      svc_params.rate_per_pe = std::atof(next());
    } else if (arg == "--qcap") {
      svc_params.queue_cap =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--plant-lost-reply") {
      svc_params.plant_lost_reply = true;
    } else if (arg == "--transport") {
      transport = true;
    } else if (arg == "--nodes") {
      tr_params.nnodes = std::atoi(next());
    } else if (arg == "--disconnect") {
      tr_params.disconnect_rate = std::atof(next());
    } else if (arg == "--lost") {
      tr_params.disconnect_lost = std::atoi(next());
    } else if (arg == "--plant-lost") {
      tr_params.plant_lost = true;
    } else if (arg == "--agg") {
      params.aggregate = true;
      tr_params.aggregate = true;
    } else if (arg == "--plant-bug") {
      params.plant_reorder_bug = true;
    } else if (arg == "--race") {
      race = true;
    } else if (arg == "--chains") {
      race_params.chains = std::atoi(next());
    } else if (arg == "--hops") {
      race_params.hops = std::atoi(next());
    } else if (arg == "--plant-race") {
      race_params.plant = 1;
    } else if (arg == "--plant-benign") {
      race_params.plant = 2;
    } else if (arg == "--trace-hash") {
      trace_hash = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (params.npes < 1 || params.actions < 0 || params.threads < 0) {
    std::fprintf(stderr, "%s: invalid --pes/--actions/--threads\n", argv[0]);
    return 2;
  }
  if (race && !converse::sim::RaceFuzzAvailable()) {
    std::fprintf(stderr,
                 "%s: --race needs the CciRace detector; rebuild with "
                 "-DCONVERSE_RACE=ON\n",
                 argv[0]);
    return 2;
  }
  if (race && (race_params.chains < 0 || race_params.hops < 1)) {
    std::fprintf(stderr, "%s: invalid --chains/--hops\n", argv[0]);
    return 2;
  }
  if (static_cast<int>(race) + static_cast<int>(service) +
          static_cast<int>(ldb) + static_cast<int>(transport) > 1) {
    std::fprintf(stderr,
                 "%s: --race, --service, --ldb and --transport are "
                 "exclusive\n",
                 argv[0]);
    return 2;
  }
  if (transport &&
      (tr_params.nnodes < 1 || tr_params.disconnect_rate < 0 ||
       tr_params.disconnect_rate > 1 || tr_params.disconnect_lost < 1)) {
    std::fprintf(stderr, "%s: invalid --nodes/--disconnect/--lost\n",
                 argv[0]);
    return 2;
  }
  if (service && (svc_params.workers < 1 || svc_params.sessions < 1 ||
                  svc_params.rate_per_pe <= 0)) {
    std::fprintf(stderr, "%s: invalid --workers/--sessions/--rate\n",
                 argv[0]);
    return 2;
  }
  if (ldb && (ldb_params.waves < 1 || ldb_params.seeds_per_pe < 1 ||
              ldb_params.strategy >= converse::kCldStrategyCount ||
              ldb_params.prio_fraction < 0 || ldb_params.prio_fraction > 1)) {
    std::fprintf(stderr, "%s: invalid --waves/--lseeds/--strategy/--prio-frac\n",
                 argv[0]);
    return 2;
  }

  if (!sweep) {
    race_params.seed = params.seed;
    svc_params.seed = params.seed;
    ldb_params.seed = params.seed;
    tr_params.seed = params.seed;
    if (race) return RunOneRace(race_params, quiet) ? 0 : 1;
    if (service) return RunOneService(svc_params, trace_hash, quiet) ? 0 : 1;
    if (ldb) return RunOneLdb(ldb_params, trace_hash, quiet) ? 0 : 1;
    if (transport) return RunOneTransport(tr_params, trace_hash, quiet) ? 0 : 1;
    return RunOne(params, trace_hash, quiet) ? 0 : 1;
  }
  if (explicit_seed) start = params.seed;
  for (unsigned long long s = start; s < start + seeds; ++s) {
    params.seed = s;
    race_params.seed = s;
    svc_params.seed = s;
    ldb_params.seed = s;
    tr_params.seed = s;
    if (race) {
      if (!RunOneRace(race_params, quiet)) return 1;
    } else if (service) {
      if (!RunOneService(svc_params, trace_hash, quiet)) return 1;
    } else if (ldb) {
      if (!RunOneLdb(ldb_params, trace_hash, quiet)) return 1;
    } else if (transport) {
      if (!RunOneTransport(tr_params, trace_hash, quiet)) return 1;
    } else if (!RunOne(params, trace_hash, quiet)) {
      return 1;
    }
  }
  if (!quiet) {
    std::printf("all %llu seeds passed\n", seeds);
  }
  return 0;
}
