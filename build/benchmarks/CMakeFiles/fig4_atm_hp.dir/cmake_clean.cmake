file(REMOVE_RECURSE
  "../bench/fig4_atm_hp"
  "../bench/fig4_atm_hp.pdb"
  "CMakeFiles/fig4_atm_hp.dir/fig4_atm_hp.cpp.o"
  "CMakeFiles/fig4_atm_hp.dir/fig4_atm_hp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_atm_hp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
