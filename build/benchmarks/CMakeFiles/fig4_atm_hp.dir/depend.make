# Empty dependencies file for fig4_atm_hp.
# This may be replaced when dependencies are built.
