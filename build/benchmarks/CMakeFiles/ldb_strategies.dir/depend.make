# Empty dependencies file for ldb_strategies.
# This may be replaced when dependencies are built.
