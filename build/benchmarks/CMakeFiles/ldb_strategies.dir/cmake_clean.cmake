file(REMOVE_RECURSE
  "../bench/ldb_strategies"
  "../bench/ldb_strategies.pdb"
  "CMakeFiles/ldb_strategies.dir/ldb_strategies.cpp.o"
  "CMakeFiles/ldb_strategies.dir/ldb_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldb_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
