# Empty compiler generated dependencies file for ldb_strategies.
# This may be replaced when dependencies are built.
