# Empty compiler generated dependencies file for thread_switch.
# This may be replaced when dependencies are built.
