file(REMOVE_RECURSE
  "../bench/thread_switch"
  "../bench/thread_switch.pdb"
  "CMakeFiles/thread_switch.dir/thread_switch.cpp.o"
  "CMakeFiles/thread_switch.dir/thread_switch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
