file(REMOVE_RECURSE
  "../bench/cmpi_vs_raw"
  "../bench/cmpi_vs_raw.pdb"
  "CMakeFiles/cmpi_vs_raw.dir/cmpi_vs_raw.cpp.o"
  "CMakeFiles/cmpi_vs_raw.dir/cmpi_vs_raw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_vs_raw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
