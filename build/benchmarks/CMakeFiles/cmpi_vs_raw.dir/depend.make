# Empty dependencies file for cmpi_vs_raw.
# This may be replaced when dependencies are built.
