file(REMOVE_RECURSE
  "../bench/overhead_breakdown"
  "../bench/overhead_breakdown.pdb"
  "CMakeFiles/overhead_breakdown.dir/overhead_breakdown.cpp.o"
  "CMakeFiles/overhead_breakdown.dir/overhead_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
