# Empty dependencies file for fig5_t3d.
# This may be replaced when dependencies are built.
