file(REMOVE_RECURSE
  "../bench/fig7_sp1"
  "../bench/fig7_sp1.pdb"
  "CMakeFiles/fig7_sp1.dir/fig7_sp1.cpp.o"
  "CMakeFiles/fig7_sp1.dir/fig7_sp1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sp1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
