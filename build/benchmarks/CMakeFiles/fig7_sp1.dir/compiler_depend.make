# Empty compiler generated dependencies file for fig7_sp1.
# This may be replaced when dependencies are built.
