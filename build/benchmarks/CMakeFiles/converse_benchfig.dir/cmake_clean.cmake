file(REMOVE_RECURSE
  "CMakeFiles/converse_benchfig.dir/figure_common.cpp.o"
  "CMakeFiles/converse_benchfig.dir/figure_common.cpp.o.d"
  "libconverse_benchfig.a"
  "libconverse_benchfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converse_benchfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
