file(REMOVE_RECURSE
  "libconverse_benchfig.a"
)
