# Empty compiler generated dependencies file for converse_benchfig.
# This may be replaced when dependencies are built.
