# Empty compiler generated dependencies file for cmm_ops.
# This may be replaced when dependencies are built.
