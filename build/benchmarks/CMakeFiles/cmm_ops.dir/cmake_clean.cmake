file(REMOVE_RECURSE
  "../bench/cmm_ops"
  "../bench/cmm_ops.pdb"
  "CMakeFiles/cmm_ops.dir/cmm_ops.cpp.o"
  "CMakeFiles/cmm_ops.dir/cmm_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmm_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
