file(REMOVE_RECURSE
  "../bench/gptr_ops"
  "../bench/gptr_ops.pdb"
  "CMakeFiles/gptr_ops.dir/gptr_ops.cpp.o"
  "CMakeFiles/gptr_ops.dir/gptr_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gptr_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
