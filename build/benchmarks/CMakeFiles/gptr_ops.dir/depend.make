# Empty dependencies file for gptr_ops.
# This may be replaced when dependencies are built.
