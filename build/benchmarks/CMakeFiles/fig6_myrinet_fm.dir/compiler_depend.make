# Empty compiler generated dependencies file for fig6_myrinet_fm.
# This may be replaced when dependencies are built.
