file(REMOVE_RECURSE
  "../bench/fig6_myrinet_fm"
  "../bench/fig6_myrinet_fm.pdb"
  "CMakeFiles/fig6_myrinet_fm.dir/fig6_myrinet_fm.cpp.o"
  "CMakeFiles/fig6_myrinet_fm.dir/fig6_myrinet_fm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_myrinet_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
