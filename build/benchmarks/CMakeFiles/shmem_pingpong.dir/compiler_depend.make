# Empty compiler generated dependencies file for shmem_pingpong.
# This may be replaced when dependencies are built.
