file(REMOVE_RECURSE
  "../bench/shmem_pingpong"
  "../bench/shmem_pingpong.pdb"
  "CMakeFiles/shmem_pingpong.dir/shmem_pingpong.cpp.o"
  "CMakeFiles/shmem_pingpong.dir/shmem_pingpong.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shmem_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
