# Empty compiler generated dependencies file for queueing_strategies.
# This may be replaced when dependencies are built.
