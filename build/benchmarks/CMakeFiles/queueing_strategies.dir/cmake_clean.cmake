file(REMOVE_RECURSE
  "../bench/queueing_strategies"
  "../bench/queueing_strategies.pdb"
  "CMakeFiles/queueing_strategies.dir/queueing_strategies.cpp.o"
  "CMakeFiles/queueing_strategies.dir/queueing_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
