file(REMOVE_RECURSE
  "../bench/mdt_language"
  "../bench/mdt_language.pdb"
  "CMakeFiles/mdt_language.dir/mdt_language.cpp.o"
  "CMakeFiles/mdt_language.dir/mdt_language.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdt_language.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
