# Empty dependencies file for mdt_language.
# This may be replaced when dependencies are built.
