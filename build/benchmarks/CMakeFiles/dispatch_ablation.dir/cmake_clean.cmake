file(REMOVE_RECURSE
  "../bench/dispatch_ablation"
  "../bench/dispatch_ablation.pdb"
  "CMakeFiles/dispatch_ablation.dir/dispatch_ablation.cpp.o"
  "CMakeFiles/dispatch_ablation.dir/dispatch_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatch_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
