# Empty dependencies file for dispatch_ablation.
# This may be replaced when dependencies are built.
