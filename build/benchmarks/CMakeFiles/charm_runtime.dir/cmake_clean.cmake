file(REMOVE_RECURSE
  "../bench/charm_runtime"
  "../bench/charm_runtime.pdb"
  "CMakeFiles/charm_runtime.dir/charm_runtime.cpp.o"
  "CMakeFiles/charm_runtime.dir/charm_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
