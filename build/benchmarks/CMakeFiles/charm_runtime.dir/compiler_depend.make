# Empty compiler generated dependencies file for charm_runtime.
# This may be replaced when dependencies are built.
