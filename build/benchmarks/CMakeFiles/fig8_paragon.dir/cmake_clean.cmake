file(REMOVE_RECURSE
  "../bench/fig8_paragon"
  "../bench/fig8_paragon.pdb"
  "CMakeFiles/fig8_paragon.dir/fig8_paragon.cpp.o"
  "CMakeFiles/fig8_paragon.dir/fig8_paragon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_paragon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
