# Empty dependencies file for fig8_paragon.
# This may be replaced when dependencies are built.
