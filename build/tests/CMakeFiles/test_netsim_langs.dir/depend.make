# Empty dependencies file for test_netsim_langs.
# This may be replaced when dependencies are built.
