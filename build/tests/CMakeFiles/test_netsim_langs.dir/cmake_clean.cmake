file(REMOVE_RECURSE
  "CMakeFiles/test_netsim_langs.dir/test_netsim_langs.cpp.o"
  "CMakeFiles/test_netsim_langs.dir/test_netsim_langs.cpp.o.d"
  "test_netsim_langs"
  "test_netsim_langs.pdb"
  "test_netsim_langs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netsim_langs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
