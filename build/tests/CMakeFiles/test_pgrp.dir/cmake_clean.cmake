file(REMOVE_RECURSE
  "CMakeFiles/test_pgrp.dir/test_pgrp.cpp.o"
  "CMakeFiles/test_pgrp.dir/test_pgrp.cpp.o.d"
  "test_pgrp"
  "test_pgrp.pdb"
  "test_pgrp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pgrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
