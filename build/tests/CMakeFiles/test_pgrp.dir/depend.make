# Empty dependencies file for test_pgrp.
# This may be replaced when dependencies are built.
