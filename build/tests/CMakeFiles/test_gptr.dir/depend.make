# Empty dependencies file for test_gptr.
# This may be replaced when dependencies are built.
