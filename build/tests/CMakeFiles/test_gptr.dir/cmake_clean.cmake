file(REMOVE_RECURSE
  "CMakeFiles/test_gptr.dir/test_gptr.cpp.o"
  "CMakeFiles/test_gptr.dir/test_gptr.cpp.o.d"
  "test_gptr"
  "test_gptr.pdb"
  "test_gptr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gptr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
