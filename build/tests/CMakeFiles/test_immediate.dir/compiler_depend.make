# Empty compiler generated dependencies file for test_immediate.
# This may be replaced when dependencies are built.
