file(REMOVE_RECURSE
  "CMakeFiles/test_immediate.dir/test_immediate.cpp.o"
  "CMakeFiles/test_immediate.dir/test_immediate.cpp.o.d"
  "test_immediate"
  "test_immediate.pdb"
  "test_immediate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_immediate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
