file(REMOVE_RECURSE
  "CMakeFiles/test_core_extra.dir/test_core_extra.cpp.o"
  "CMakeFiles/test_core_extra.dir/test_core_extra.cpp.o.d"
  "test_core_extra"
  "test_core_extra.pdb"
  "test_core_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
