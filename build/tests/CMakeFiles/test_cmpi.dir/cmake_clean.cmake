file(REMOVE_RECURSE
  "CMakeFiles/test_cmpi.dir/test_cmpi.cpp.o"
  "CMakeFiles/test_cmpi.dir/test_cmpi.cpp.o.d"
  "test_cmpi"
  "test_cmpi.pdb"
  "test_cmpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
