# Empty dependencies file for test_cmm.
# This may be replaced when dependencies are built.
