file(REMOVE_RECURSE
  "CMakeFiles/test_cmm.dir/test_cmm.cpp.o"
  "CMakeFiles/test_cmm.dir/test_cmm.cpp.o.d"
  "test_cmm"
  "test_cmm.pdb"
  "test_cmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
