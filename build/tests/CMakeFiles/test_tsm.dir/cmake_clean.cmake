file(REMOVE_RECURSE
  "CMakeFiles/test_tsm.dir/test_tsm.cpp.o"
  "CMakeFiles/test_tsm.dir/test_tsm.cpp.o.d"
  "test_tsm"
  "test_tsm.pdb"
  "test_tsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
