# Empty dependencies file for test_tsm.
# This may be replaced when dependencies are built.
