# Empty compiler generated dependencies file for test_charm_array.
# This may be replaced when dependencies are built.
