file(REMOVE_RECURSE
  "CMakeFiles/test_charm_array.dir/test_charm_array.cpp.o"
  "CMakeFiles/test_charm_array.dir/test_charm_array.cpp.o.d"
  "test_charm_array"
  "test_charm_array.pdb"
  "test_charm_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charm_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
