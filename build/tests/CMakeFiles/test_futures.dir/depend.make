# Empty dependencies file for test_futures.
# This may be replaced when dependencies are built.
