file(REMOVE_RECURSE
  "CMakeFiles/test_futures.dir/test_futures.cpp.o"
  "CMakeFiles/test_futures.dir/test_futures.cpp.o.d"
  "test_futures"
  "test_futures.pdb"
  "test_futures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_futures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
