file(REMOVE_RECURSE
  "CMakeFiles/test_cld.dir/test_cld.cpp.o"
  "CMakeFiles/test_cld.dir/test_cld.cpp.o.d"
  "test_cld"
  "test_cld.pdb"
  "test_cld[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
