# Empty compiler generated dependencies file for test_cld.
# This may be replaced when dependencies are built.
