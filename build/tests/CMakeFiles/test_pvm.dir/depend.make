# Empty dependencies file for test_pvm.
# This may be replaced when dependencies are built.
