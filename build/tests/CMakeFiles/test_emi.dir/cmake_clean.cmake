file(REMOVE_RECURSE
  "CMakeFiles/test_emi.dir/test_emi.cpp.o"
  "CMakeFiles/test_emi.dir/test_emi.cpp.o.d"
  "test_emi"
  "test_emi.pdb"
  "test_emi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
