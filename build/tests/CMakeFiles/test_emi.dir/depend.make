# Empty dependencies file for test_emi.
# This may be replaced when dependencies are built.
