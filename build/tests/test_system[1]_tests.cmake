add_test([=[System.AllParadigmsOneTracedMachine]=]  /root/repo/build/tests/test_system [==[--gtest_filter=System.AllParadigmsOneTracedMachine]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[System.AllParadigmsOneTracedMachine]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] TIMEOUT 120)
set(  test_system_TESTS System.AllParadigmsOneTracedMachine)
