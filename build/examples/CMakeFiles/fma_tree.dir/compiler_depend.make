# Empty compiler generated dependencies file for fma_tree.
# This may be replaced when dependencies are built.
