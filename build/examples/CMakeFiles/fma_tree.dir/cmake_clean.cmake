file(REMOVE_RECURSE
  "CMakeFiles/fma_tree.dir/fma_tree.cpp.o"
  "CMakeFiles/fma_tree.dir/fma_tree.cpp.o.d"
  "fma_tree"
  "fma_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fma_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
