file(REMOVE_RECURSE
  "CMakeFiles/jacobi_dp.dir/jacobi_dp.cpp.o"
  "CMakeFiles/jacobi_dp.dir/jacobi_dp.cpp.o.d"
  "jacobi_dp"
  "jacobi_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
