# Empty compiler generated dependencies file for jacobi_dp.
# This may be replaced when dependencies are built.
