file(REMOVE_RECURSE
  "CMakeFiles/branch_and_bound.dir/branch_and_bound.cpp.o"
  "CMakeFiles/branch_and_bound.dir/branch_and_bound.cpp.o.d"
  "branch_and_bound"
  "branch_and_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_and_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
