# Empty dependencies file for branch_and_bound.
# This may be replaced when dependencies are built.
