file(REMOVE_RECURSE
  "CMakeFiles/mdt_demo.dir/mdt_demo.cpp.o"
  "CMakeFiles/mdt_demo.dir/mdt_demo.cpp.o.d"
  "mdt_demo"
  "mdt_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdt_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
