# Empty compiler generated dependencies file for mdt_demo.
# This may be replaced when dependencies are built.
