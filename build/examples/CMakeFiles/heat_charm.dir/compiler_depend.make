# Empty compiler generated dependencies file for heat_charm.
# This may be replaced when dependencies are built.
