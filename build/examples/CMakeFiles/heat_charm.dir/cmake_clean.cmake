file(REMOVE_RECURSE
  "CMakeFiles/heat_charm.dir/heat_charm.cpp.o"
  "CMakeFiles/heat_charm.dir/heat_charm.cpp.o.d"
  "heat_charm"
  "heat_charm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_charm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
