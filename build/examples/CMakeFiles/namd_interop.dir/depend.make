# Empty dependencies file for namd_interop.
# This may be replaced when dependencies are built.
