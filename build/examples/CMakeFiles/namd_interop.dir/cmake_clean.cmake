file(REMOVE_RECURSE
  "CMakeFiles/namd_interop.dir/namd_interop.cpp.o"
  "CMakeFiles/namd_interop.dir/namd_interop.cpp.o.d"
  "namd_interop"
  "namd_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namd_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
