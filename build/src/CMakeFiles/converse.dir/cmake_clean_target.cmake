file(REMOVE_RECURSE
  "libconverse.a"
)
