
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collectives/collectives.cpp" "src/CMakeFiles/converse.dir/collectives/collectives.cpp.o" "gcc" "src/CMakeFiles/converse.dir/collectives/collectives.cpp.o.d"
  "/root/repo/src/collectives/pgrp.cpp" "src/CMakeFiles/converse.dir/collectives/pgrp.cpp.o" "gcc" "src/CMakeFiles/converse.dir/collectives/pgrp.cpp.o.d"
  "/root/repo/src/core/emi.cpp" "src/CMakeFiles/converse.dir/core/emi.cpp.o" "gcc" "src/CMakeFiles/converse.dir/core/emi.cpp.o.d"
  "/root/repo/src/core/handlers.cpp" "src/CMakeFiles/converse.dir/core/handlers.cpp.o" "gcc" "src/CMakeFiles/converse.dir/core/handlers.cpp.o.d"
  "/root/repo/src/core/io.cpp" "src/CMakeFiles/converse.dir/core/io.cpp.o" "gcc" "src/CMakeFiles/converse.dir/core/io.cpp.o.d"
  "/root/repo/src/core/machine.cpp" "src/CMakeFiles/converse.dir/core/machine.cpp.o" "gcc" "src/CMakeFiles/converse.dir/core/machine.cpp.o.d"
  "/root/repo/src/core/module.cpp" "src/CMakeFiles/converse.dir/core/module.cpp.o" "gcc" "src/CMakeFiles/converse.dir/core/module.cpp.o.d"
  "/root/repo/src/core/msg.cpp" "src/CMakeFiles/converse.dir/core/msg.cpp.o" "gcc" "src/CMakeFiles/converse.dir/core/msg.cpp.o.d"
  "/root/repo/src/core/netmodel.cpp" "src/CMakeFiles/converse.dir/core/netmodel.cpp.o" "gcc" "src/CMakeFiles/converse.dir/core/netmodel.cpp.o.d"
  "/root/repo/src/core/queueing.cpp" "src/CMakeFiles/converse.dir/core/queueing.cpp.o" "gcc" "src/CMakeFiles/converse.dir/core/queueing.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/converse.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/converse.dir/core/scheduler.cpp.o.d"
  "/root/repo/src/futures/futures.cpp" "src/CMakeFiles/converse.dir/futures/futures.cpp.o" "gcc" "src/CMakeFiles/converse.dir/futures/futures.cpp.o.d"
  "/root/repo/src/gptr/gptr.cpp" "src/CMakeFiles/converse.dir/gptr/gptr.cpp.o" "gcc" "src/CMakeFiles/converse.dir/gptr/gptr.cpp.o.d"
  "/root/repo/src/langs/charm/charm.cpp" "src/CMakeFiles/converse.dir/langs/charm/charm.cpp.o" "gcc" "src/CMakeFiles/converse.dir/langs/charm/charm.cpp.o.d"
  "/root/repo/src/langs/charm/charm_array.cpp" "src/CMakeFiles/converse.dir/langs/charm/charm_array.cpp.o" "gcc" "src/CMakeFiles/converse.dir/langs/charm/charm_array.cpp.o.d"
  "/root/repo/src/langs/cmpi/cmpi.cpp" "src/CMakeFiles/converse.dir/langs/cmpi/cmpi.cpp.o" "gcc" "src/CMakeFiles/converse.dir/langs/cmpi/cmpi.cpp.o.d"
  "/root/repo/src/langs/dp/dp.cpp" "src/CMakeFiles/converse.dir/langs/dp/dp.cpp.o" "gcc" "src/CMakeFiles/converse.dir/langs/dp/dp.cpp.o.d"
  "/root/repo/src/langs/mdt/mdt.cpp" "src/CMakeFiles/converse.dir/langs/mdt/mdt.cpp.o" "gcc" "src/CMakeFiles/converse.dir/langs/mdt/mdt.cpp.o.d"
  "/root/repo/src/langs/nx/cnx.cpp" "src/CMakeFiles/converse.dir/langs/nx/cnx.cpp.o" "gcc" "src/CMakeFiles/converse.dir/langs/nx/cnx.cpp.o.d"
  "/root/repo/src/langs/pvm/cpvm.cpp" "src/CMakeFiles/converse.dir/langs/pvm/cpvm.cpp.o" "gcc" "src/CMakeFiles/converse.dir/langs/pvm/cpvm.cpp.o.d"
  "/root/repo/src/langs/sm/sm.cpp" "src/CMakeFiles/converse.dir/langs/sm/sm.cpp.o" "gcc" "src/CMakeFiles/converse.dir/langs/sm/sm.cpp.o.d"
  "/root/repo/src/langs/tsm/tsm.cpp" "src/CMakeFiles/converse.dir/langs/tsm/tsm.cpp.o" "gcc" "src/CMakeFiles/converse.dir/langs/tsm/tsm.cpp.o.d"
  "/root/repo/src/ldb/cld.cpp" "src/CMakeFiles/converse.dir/ldb/cld.cpp.o" "gcc" "src/CMakeFiles/converse.dir/ldb/cld.cpp.o.d"
  "/root/repo/src/msgmgr/cmm.cpp" "src/CMakeFiles/converse.dir/msgmgr/cmm.cpp.o" "gcc" "src/CMakeFiles/converse.dir/msgmgr/cmm.cpp.o.d"
  "/root/repo/src/threads/cth.cpp" "src/CMakeFiles/converse.dir/threads/cth.cpp.o" "gcc" "src/CMakeFiles/converse.dir/threads/cth.cpp.o.d"
  "/root/repo/src/threads/cts.cpp" "src/CMakeFiles/converse.dir/threads/cts.cpp.o" "gcc" "src/CMakeFiles/converse.dir/threads/cts.cpp.o.d"
  "/root/repo/src/threads/fiber.cpp" "src/CMakeFiles/converse.dir/threads/fiber.cpp.o" "gcc" "src/CMakeFiles/converse.dir/threads/fiber.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/converse.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/converse.dir/trace/trace.cpp.o.d"
  "/root/repo/src/trace/trace_report.cpp" "src/CMakeFiles/converse.dir/trace/trace_report.cpp.o" "gcc" "src/CMakeFiles/converse.dir/trace/trace_report.cpp.o.d"
  "/root/repo/src/util/crc.cpp" "src/CMakeFiles/converse.dir/util/crc.cpp.o" "gcc" "src/CMakeFiles/converse.dir/util/crc.cpp.o.d"
  "/root/repo/src/util/pack.cpp" "src/CMakeFiles/converse.dir/util/pack.cpp.o" "gcc" "src/CMakeFiles/converse.dir/util/pack.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/converse.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/converse.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/spantree.cpp" "src/CMakeFiles/converse.dir/util/spantree.cpp.o" "gcc" "src/CMakeFiles/converse.dir/util/spantree.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/converse.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/converse.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
