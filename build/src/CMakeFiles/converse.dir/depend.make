# Empty dependencies file for converse.
# This may be replaced when dependencies are built.
