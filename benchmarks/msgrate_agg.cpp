// Aggregation benchmark: small-message rate with the Cst layer on vs off,
// plus spanning-tree broadcast round latency vs PE count.
//
// Rate shape is the msgrate_mpsc many-to-one pattern (N-1 senders blast
// PE 0 under a credit window), swept over payload sizes 16/64/256 B with
// aggregation forced off and on.  Each sender streams one reused source
// buffer with CmiSyncSend — the natural shape for fixed-size updates, and
// the one aggregation is built for: with the layer on, a send is a single
// gather-copy into the open frame and the receiver dispatches in-place
// frame views, so the whole path allocates nothing per message; with it
// off, every send is a fresh copy pushed through the delivery ring and
// returned to the sender's pool.  Acks are flushed explicitly — they are
// latency-critical control traffic, exactly the pattern
// docs/PERFORMANCE.md recommends CmiFlush for.
//
// Broadcast latency: the root broadcasts a tiny message and waits for one
// small reply from every PE; reported as mean round-trip per round, for 2,
// 4 and 8 PEs.  The spanning tree is active in both agg modes (it is
// independent of aggregation), so this tracks the forwarding pipeline.
//
// Flags: --json[=path], --quick, --msgs=M per sender, --relaxed (report
// the speedup shape-check but do not gate the exit code on it — for noisy
// shared runners and sanitizer builds, where ratios are not meaningful).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "converse/converse.h"

using namespace converse;

namespace {

constexpr int kBurst = 128;  // sender credit window (messages per ack)

double RunMsgRate(int npes, int msgs_per_sender, std::size_t payload_bytes,
                  int aggregate) {
  const long total = static_cast<long>(npes - 1) * msgs_per_sender;
  std::atomic<double> rate{0.0};
  MachineConfig cfg;
  cfg.npes = npes;
  cfg.aggregate_sends = aggregate;
  // Size frames to the credit window: one flush per burst instead of the
  // default ~27-entry frames (a knob documented in docs/PERFORMANCE.md).
  cfg.agg_frame_msgs = kBurst;
  cfg.agg_frame_bytes = 16384;
  RunConverse(cfg, [&](int pe, int np) {
    int ack = CmiRegisterHandler([](void*) {});
    double t_first = 0.0;
    long received = 0;
    std::vector<int> per_sender(static_cast<std::size_t>(np), 0);
    int sink = CmiRegisterHandler([&, ack, total](void* msg) {
      if (received == 0) t_first = CmiTimer();
      ++received;
      const int src = CmiMsgSourcePe(msg);
      if (++per_sender[static_cast<std::size_t>(src)] == kBurst) {
        per_sender[static_cast<std::size_t>(src)] = 0;
        void* a = CmiMakeMessage(ack, nullptr, 0);
        CmiSyncSendAndFree(static_cast<unsigned>(src), CmiMsgTotalSize(a), a);
        CmiFlush();  // the ack gates a sender: do not let it sit in a frame
      }
      if (received == total) {
        const double dt = CmiTimer() - t_first;
        rate.store(dt > 0 ? static_cast<double>(total - 1) / dt : 0.0);
        ConverseBroadcastExit();
      }
    });

    if (pe == 0) {
      CsdScheduler(-1);
      return;
    }
    std::vector<char> payload(payload_bytes, 's');
    void* m = CmiMakeMessage(sink, payload.data(), payload.size());
    const unsigned msz = static_cast<unsigned>(CmiMsgTotalSize(m));
    int sent_in_burst = 0;
    for (int i = 0; i < msgs_per_sender; ++i) {
      CmiSyncSend(0, msz, m);
      if (++sent_in_burst == kBurst) {
        sent_in_burst = 0;
        void* a = CmiGetSpecificMsg(ack);
        (void)a;  // ack payload is empty; the MMI reclaims the buffer
      }
    }
    CmiFree(m);
    CsdScheduler(-1);  // wait for the exit broadcast
  });
  return rate.load();
}

/// Mean time (µs) for one broadcast round: root broadcasts, every PE
/// (including the root) sends a small reply, the round ends when the root
/// has all npes replies.
double RunBcastRound(int npes, int rounds, int aggregate) {
  std::atomic<double> round_us{0.0};
  MachineConfig cfg;
  cfg.npes = npes;
  cfg.aggregate_sends = aggregate;
  RunConverse(cfg, [&](int pe, int np) {
    int reply = -1;
    int bcast = CmiRegisterHandler([&reply](void*) {
      void* r = CmiMakeMessage(reply, nullptr, 0);
      CmiSyncSendAndFree(0, CmiMsgTotalSize(r), r);
      CmiFlush();  // replies gate the next round
    });
    int replies = 0, round = 0;
    double t0 = 0.0;
    reply = CmiRegisterHandler([&, bcast, np](void*) {
      if (++replies < np) return;
      replies = 0;
      if (++round == rounds) {
        round_us.store((CmiTimer() - t0) * 1e6 / rounds);
        ConverseBroadcastExit();
        return;
      }
      void* m = CmiMakeMessage(bcast, nullptr, 0);
      CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
    });
    if (pe == 0) {
      t0 = CmiTimer();
      void* m = CmiMakeMessage(bcast, nullptr, 0);
      CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
    }
    CsdScheduler(-1);
  });
  return round_us.load();
}

double BestOf(double (*fn)(int, int, std::size_t, int), int npes, int msgs,
              std::size_t bytes, int agg) {
  // Five reps, keep the max: thread placement on small machines makes
  // single runs noisy and the peak is the honest capability number.
  double best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    best = std::max(best, fn(npes, msgs, bytes, agg));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonInit("msgrate_agg", argc, argv);
  const int npes = 4;
  int msgs = bench::QuickRun() ? 8192 : 100000;
  bool relaxed = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--msgs=", 7) == 0) {
      msgs = std::max(kBurst, std::atoi(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--relaxed") == 0) {
      relaxed = true;
    }
  }
  msgs -= msgs % kBurst;

  std::printf("# msgrate_agg: %d senders -> 1 receiver, %d msgs/sender, "
              "burst %d, aggregation off vs on\n",
              npes - 1, msgs, kBurst);
  double speedup_64 = 0.0;
  for (std::size_t bytes : {std::size_t{16}, std::size_t{64},
                            std::size_t{256}}) {
    const double off = BestOf(&RunMsgRate, npes, msgs, bytes, 0);
    const double on = BestOf(&RunMsgRate, npes, msgs, bytes, 1);
    const double ratio = off > 0 ? on / off : 0.0;
    if (bytes == 64) speedup_64 = ratio;
    std::printf("payload %3zu B: %12.0f msgs/sec off, %12.0f msgs/sec on "
                "(%.2fx)\n",
                bytes, off, on, ratio);
    char metric[64];
    std::snprintf(metric, sizeof(metric), "msgs_per_sec_%zuB_off/%dpe",
                  bytes, npes);
    bench::JsonAdd(metric, off, "msgs_per_sec");
    std::snprintf(metric, sizeof(metric), "msgs_per_sec_%zuB_on/%dpe",
                  bytes, npes);
    bench::JsonAdd(metric, on, "msgs_per_sec");
  }
  bench::JsonAdd("agg_speedup_64B/4pe", speedup_64, "x");

  const int rounds = bench::QuickRun() ? 200 : 2000;
  for (int bp : {2, 4, 8}) {
    const double off = RunBcastRound(bp, rounds, 0);
    const double on = RunBcastRound(bp, rounds, 1);
    std::printf("bcast round %d PEs: %8.2f us off, %8.2f us on\n", bp, off,
                on);
    char metric[64];
    std::snprintf(metric, sizeof(metric), "bcast_round_us_off/%dpe", bp);
    bench::JsonAdd(metric, off, "us");
    std::snprintf(metric, sizeof(metric), "bcast_round_us_on/%dpe", bp);
    bench::JsonAdd(metric, on, "us");
  }

  // Acceptance shape-check: batching must buy at least 1.5x at 64 B / 4 PE.
  const bool ok = speedup_64 >= 1.5;
  std::printf("# shape-check %-55s %s\n",
              "aggregation >= 1.5x msgs/sec at 64 B, 4 PEs",
              ok ? "PASS" : (relaxed ? "FAIL (relaxed)" : "FAIL"));
  const int json_rc = bench::JsonFlush();
  return (ok || relaxed) && json_rc == 0 ? 0 : 1;
}
