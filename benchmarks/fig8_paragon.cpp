// Reproduces Figure 8: Intel Paragon (SUNMOS) message passing performance.
#include <cstdlib>
#include "figure_common.h"

int main() {
  using namespace converse;
  const auto costs = bench::MeasureSoftwareCosts();
  const int failures = bench::EmitFigure(
      "Figure 8", "Paragon (SUNMOS) Message Passing Performance",
      netmodels::ParagonSunmos(), costs, /*with_sched_series=*/false);
  return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
