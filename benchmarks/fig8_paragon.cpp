// Reproduces Figure 8: Intel Paragon (SUNMOS) message passing performance.
#include <cstdlib>
#include "bench_json.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace converse;
  bench::JsonInit("fig8_paragon", argc, argv);
  const auto costs =
      bench::MeasureSoftwareCosts(bench::QuickRun() ? 300 : 3000);
  const int failures = bench::EmitFigure(
      "Figure 8", "Paragon (SUNMOS) Message Passing Performance",
      netmodels::ParagonSunmos(), costs, /*with_sched_series=*/false);
  if (bench::JsonFlush() != 0) return EXIT_FAILURE;
  return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
