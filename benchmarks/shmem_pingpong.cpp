// Honest-hardware companion to Figures 4-8: the paper's round-trip
// experiment run for real on this host's shared-memory machine (two PE
// threads, real clock).  "Using this, the average time for one individual
// message send, transmission, receipt and handling was computed" (§5.1).
// The second series reproduces the paper's second experiment: "Each
// handler upon receiving a message enqueues it in the scheduler's queue."
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_json.h"
#include "converse/converse.h"

using namespace converse;

namespace {

struct Result {
  std::size_t size;
  double oneway_us;        // direct handler delivery
  double oneway_sched_us;  // handlers re-enqueue through the scheduler
};

/// The message's first payload word counts hops; whichever PE sees the
/// final hop stops the clock (always PE 0: the hop count ends even).
double RunPingPong(std::size_t payload, int rounds, bool through_scheduler) {
  std::atomic<double> oneway{0};
  const long total_hops = 2L * rounds;
  RunConverse(2, [&](int pe, int) {
    double t0 = 0;
    int bounce_net = -1;  // forward declaration for the lambdas below

    auto bounce_logic = [&, total_hops](void* msg) {
      auto* hops = static_cast<long*>(CmiMsgPayload(msg));
      if (++*hops >= total_hops) {
        oneway = (CmiTimer() - t0) * 1e6 / static_cast<double>(total_hops);
        CmiFree(msg);
        ConverseBroadcastExit();
        return;
      }
      const int peer = 1 - CmiMyPe();
      CmiSetHandler(msg, bounce_net);
      CmiSyncSendAndFree(peer, CmiMsgTotalSize(msg), msg);
    };

    // Direct: bounce straight from network delivery.
    int direct = CmiRegisterHandler([&bounce_logic](void* msg) {
      CmiGrabBuffer(&msg);
      bounce_logic(msg);
    });
    // Scheduler path (§3.3 second-handler idiom).
    int queued = CmiRegisterHandler([&bounce_logic](void* msg) {
      bounce_logic(msg);  // queue delivery: we own the message
    });
    int net = CmiRegisterHandler([&, queued](void* msg) {
      CmiGrabBuffer(&msg);
      CmiSetHandler(msg, queued);
      CsdEnqueue(msg);
    });
    bounce_net = through_scheduler ? net : direct;

    if (pe == 0) {
      void* m = CmiAlloc(CmiMsgHeaderSizeBytes() + payload);
      std::memset(CmiMsgPayload(m), 0, payload);
      CmiSetHandler(m, bounce_net);
      t0 = CmiTimer();
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
    }
    CsdScheduler(-1);
  });
  return oneway.load();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonInit("shmem_pingpong", argc, argv);
  const int scale = bench::QuickRun() ? 10 : 1;
  std::printf(
      "# Round-trip message performance on this host's shared-memory "
      "machine\n# (2 PE threads; one-way time = round-trip / 2)\n");
  std::printf("# columns: bytes oneway_us oneway_sched_us sched_extra_us\n");
  std::vector<Result> results;
  for (std::size_t s = 16; s <= 64 * 1024; s *= 4) {
    const int rounds = (s >= 16384 ? 400 : 1500) / scale;
    Result r;
    r.size = s < sizeof(long) ? sizeof(long) : s;
    // Cross-thread wakeup latency is noisy on a small host; the minimum of
    // a few repetitions is the standard latency estimator.
    r.oneway_us = 1e18;
    r.oneway_sched_us = 1e18;
    for (int rep = 0; rep < 3; ++rep) {
      r.oneway_us = std::min(r.oneway_us, RunPingPong(r.size, rounds, false));
      r.oneway_sched_us =
          std::min(r.oneway_sched_us, RunPingPong(r.size, rounds, true));
    }
    results.push_back(r);
    std::printf("%7zu %10.2f %10.2f %10.2f\n", r.size, r.oneway_us,
                r.oneway_sched_us, r.oneway_sched_us - r.oneway_us);
    char key[64];
    std::snprintf(key, sizeof(key), "oneway_us/%zu", r.size);
    bench::JsonAdd(key, r.oneway_us, "us");
    std::snprintf(key, sizeof(key), "oneway_sched_us/%zu", r.size);
    bench::JsonAdd(key, r.oneway_sched_us, "us");
  }
  // Shape check mirroring Figure 6: the scheduling adder must be
  // negligible in relative terms for large messages.  One-way times on an
  // oversubscribed 2-core host are dominated by condvar wakeup noise of
  // ±10 µs, so the bound is generous; the precise version of this check
  // lives in fig6_myrinet_fm where software cost is measured in isolation.
  const double big = results.back().oneway_sched_us;
  const double big_extra =
      results.back().oneway_sched_us - results.back().oneway_us;
  const bool relative_negligible = big_extra < 0.5 * big;
  std::printf("# shape-check %-55s %s\n",
              "scheduling cost relatively negligible for large messages",
              relative_negligible ? "PASS" : "FAIL");
  const int json_rc = bench::JsonFlush();
  return relative_negligible && json_rc == 0 ? 0 : 1;
}
