// Ablation: seed load balancing strategies under skewed workloads
// (paper §3.3.1 — "Each one is often useful in a different situation.
// Depending on the application, the user is able to link in a different
// load balancing strategy").
//
// Runs every Cld strategy over two workload shapes under the deterministic
// simulator, so every number is virtual-time and host-independent:
//
//   zipf12-burst  PE0 creates every seed at t=0; costs ~ Zipf(1.2) over
//                 1..1024 us.  The most adversarial shape for a balancer —
//                 all work born in one place, heavy-tailed costs.
//   zipf10-waves  every PE spawns in 4 bursts spaced 5 ms apart; costs ~
//                 Zipf(1.0).  Models a bursty, already-distributed app.
//
// Per (shape, strategy) row: throughput (completed seeds per virtual ms),
// idle fraction of the PE-time envelope, max/mean busy-time imbalance,
// average hops per seed, and steal/rebalance traffic.
//
// Flags: --json[=path], --quick, --relaxed (report shape-checks but do not
// fail the exit code on them).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_json.h"
#include "converse/converse.h"
#include "converse/util/rng.h"

using namespace converse;

namespace {

constexpr int kNpes = 8;
constexpr int kZipfLevels = 1024;
constexpr int kWaves = 4;
constexpr double kWaveGapUs = 5000.0;
constexpr std::uint64_t kSimSeed = 97;

struct Shape {
  const char* name;
  double zipf_s;
  bool single_source;  // all seeds born on PE0 at t=0 (else per-PE waves)
};

constexpr Shape kShapes[] = {
    {"zipf12-burst", 1.2, true},
    {"zipf10-waves", 1.0, false},
};

struct ZipfCost {
  std::vector<double> cdf;
  explicit ZipfCost(double s) {
    cdf.resize(kZipfLevels);
    double total = 0;
    for (int l = 1; l <= kZipfLevels; ++l) {
      total += 1.0 / std::pow(static_cast<double>(l), s);
      cdf[static_cast<std::size_t>(l - 1)] = total;
    }
    for (double& v : cdf) v /= total;
  }
  std::uint32_t Sample(std::uint64_t u) const {
    const double x = static_cast<double>(u >> 11) * (1.0 / 9007199254740992.0);
    return static_cast<std::uint32_t>(
               std::lower_bound(cdf.begin(), cdf.end(), x) - cdf.begin()) +
           1;
  }
};

struct Outcome {
  std::uint64_t executed = 0;
  double virtual_ms = 0;      // makespan (virtual)
  double busy_total_us = 0;   // sum of charged work
  double busy_max_us = 0;     // most-loaded PE
  double avg_hops = 0;
  std::uint64_t steals = 0;
  std::uint64_t rebalanced = 0;
  double Throughput() const {  // completed seeds per virtual millisecond
    return virtual_ms > 0 ? static_cast<double>(executed) / virtual_ms : 0;
  }
  double Imbalance() const {  // max/mean charged busy time across PEs
    const double mean = busy_total_us / kNpes;
    return mean > 0 ? busy_max_us / mean : 0;
  }
  double IdleFraction() const {
    const double span = virtual_ms * 1e3 * kNpes;
    return span > 0 ? 1.0 - busy_total_us / span : 0;
  }
};

Outcome RunStrategy(CldStrategy strat, const Shape& shape,
                    std::uint64_t total_seeds) {
  Outcome out;
  std::vector<double> busy(kNpes, 0);
  std::vector<double> busy_until(kNpes, 0);  // serial-PE completion chain
  std::vector<std::uint64_t> executed(kNpes, 0);
  std::vector<std::uint64_t> hops(kNpes, 0);
  std::vector<CldCounters> counters(kNpes);
  const ZipfCost zipf(shape.zipf_s);
  const int spawners = shape.single_source ? 1 : kNpes;
  const std::uint64_t per_spawner = total_seeds / spawners;
  const int waves = shape.single_source ? 1 : kWaves;

  SimReport report;
  SimConfig sim;
  sim.seed = kSimSeed;
  sim.report = &report;
  sim.race_detect = false;  // ~10^6 sends; HB recording is not the subject
  MachineConfig cfg;
  cfg.npes = kNpes;
  cfg.seed = kSimSeed;
  cfg.sim = &sim;
  cfg.aggregate_sends = 0;

  RunConverse(cfg, [&](int pe, int) {
    CldSetStrategy(strat);
    // Completion marker for the serial-PE model below; carries no work.
    // Delivered (not CldEnqueued) messages stay system-owned: no CmiFree.
    thread_local int h_done = -1;
    h_done = CmiRegisterHandler([](void*) {});
    thread_local int h_seed = -1;
    h_seed = CmiRegisterHandler([&, pe](void* msg) {
      std::uint32_t cost = 0;
      std::memcpy(&cost, CmiMsgPayload(msg), sizeof(cost));
      ++executed[static_cast<std::size_t>(pe)];
      // Two execution-time models, one per strategy family.  The adaptive
      // strategies pace their backlog through CldChargeTime (the worker
      // re-arms `cost` later, so the store drains in virtual time and
      // stealing/rebalancing see a live backlog).  The legacy strategies
      // execute straight off the scheduler queue with nothing consuming the
      // charge, so a serial-PE chain models the same thing from the
      // outside: each seed occupies [max(busy_until, now), +cost) on its
      // PE, and a delayed self-send pins the virtual clock (and therefore
      // the quiescence makespan) to the chain's end.  Under the adaptive
      // strategies the chain degenerates to one in-flight marker (now has
      // already advanced past busy_until), so neither model distorts the
      // other.
      const double now_us = CmiTimer() * 1e6;
      auto& bu = busy_until[static_cast<std::size_t>(pe)];
      bu = std::max(bu, now_us) + static_cast<double>(cost);
      CldChargeTime(static_cast<double>(cost));
      void* done = CmiMakeMessage(h_done, "", 0);
      CmiSyncSendDelayedAndFree(static_cast<unsigned>(pe),
                                static_cast<unsigned>(CmiMsgTotalSize(done)),
                                done, bu - now_us);
      CmiFree(msg);
    });
    thread_local int h_wave = -1;
    h_wave = CmiRegisterHandler([&, pe](void* msg) {
      int wave = 0;
      std::memcpy(&wave, CmiMsgPayload(msg), sizeof(wave));
      std::uint64_t n = per_spawner / static_cast<std::uint64_t>(waves);
      if (wave == waves - 1) {
        n += per_spawner % static_cast<std::uint64_t>(waves);
      }
      util::SplitMix64 sm(kSimSeed ^ (0x9e3779b97f4a7c15ULL *
                                      static_cast<std::uint64_t>(
                                          pe * 1031 + wave + 1)));
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint32_t cost = zipf.Sample(sm.Next());
        CldEnqueue(CmiMakeMessage(h_seed, &cost, sizeof(cost)));
      }
      if (wave + 1 < waves) {
        int next = wave + 1;
        void* nm = CmiMakeMessage(h_wave, &next, sizeof(next));
        CmiSyncSendDelayedAndFree(static_cast<unsigned>(pe),
                                  static_cast<unsigned>(CmiMsgTotalSize(nm)),
                                  nm, kWaveGapUs);
      }
    });
    if (!shape.single_source || pe == 0) {
      int w0 = 0;
      void* m = CmiMakeMessage(h_wave, &w0, sizeof(w0));
      CmiSyncSendDelayedAndFree(static_cast<unsigned>(pe),
                                static_cast<unsigned>(CmiMsgTotalSize(m)), m,
                                1.0 + pe);
    }
    CsdScheduler(-1);  // sim exits on global quiescence
    busy[static_cast<std::size_t>(pe)] = CldBusyTimeUs();
    hops[static_cast<std::size_t>(pe)] = CldSeedHops();
    counters[static_cast<std::size_t>(pe)] = CldGetCounters();
  });

  for (int i = 0; i < kNpes; ++i) {
    const auto s = static_cast<std::size_t>(i);
    out.executed += executed[s];
    out.busy_total_us += busy[s];
    out.busy_max_us = std::max(out.busy_max_us, busy[s]);
    out.avg_hops += static_cast<double>(hops[s]);
    out.steals += counters[s].stolen_in;
    out.rebalanced += counters[s].rebalanced_out;
  }
  out.avg_hops /= static_cast<double>(out.executed);
  out.virtual_ms = report.final_virtual_us * 1e-3;
  return out;
}

struct NamedStrategy {
  CldStrategy s;
  const char* name;
  bool legacy;
};

constexpr NamedStrategy kStrategies[] = {
    {CldStrategy::kLocal, "local", true},
    {CldStrategy::kRandom, "random", true},
    {CldStrategy::kNeighbor, "neighbor", true},
    {CldStrategy::kCentral, "central", true},
    {CldStrategy::kSteal, "steal", false},
    {CldStrategy::kPeriodic, "periodic", false},
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonInit("ldb_strategies", argc, argv);
  bool relaxed = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--relaxed") == 0) relaxed = true;
  }
  const std::uint64_t total_seeds = bench::QuickRun() ? 1u << 14 : 1u << 17;

  std::printf("# Cld strategies under skewed virtual-time workloads: "
              "%llu seeds, %d PEs, sim seed %llu\n",
              static_cast<unsigned long long>(total_seeds), kNpes,
              static_cast<unsigned long long>(kSimSeed));
  std::printf("# columns: shape strategy seeds/vms idle_frac max/mean_busy "
              "avg_hops steals rebalanced\n");

  double steal_tp = 0, best_legacy_tp = 0, local_tp = 0;
  double steal_imb_worst = 0;
  for (const Shape& shape : kShapes) {
    for (const NamedStrategy& ns : kStrategies) {
      const Outcome o = RunStrategy(ns.s, shape, total_seeds);
      std::printf("%-13s %-9s %9.1f %9.3f %13.3f %8.2f %8llu %10llu\n",
                  shape.name, ns.name, o.Throughput(), o.IdleFraction(),
                  o.Imbalance(), o.avg_hops,
                  static_cast<unsigned long long>(o.steals),
                  static_cast<unsigned long long>(o.rebalanced));
      char metric[96];
      std::snprintf(metric, sizeof(metric), "%s/%s/throughput", shape.name,
                    ns.name);
      bench::JsonAdd(metric, o.Throughput(), "seeds/vms");
      std::snprintf(metric, sizeof(metric), "%s/%s/idle_fraction", shape.name,
                    ns.name);
      bench::JsonAdd(metric, o.IdleFraction(), "fraction");
      std::snprintf(metric, sizeof(metric), "%s/%s/imbalance", shape.name,
                    ns.name);
      bench::JsonAdd(metric, o.Imbalance(), "max/mean");
      if (std::strcmp(shape.name, "zipf12-burst") == 0) {
        if (ns.s == CldStrategy::kSteal) steal_tp = o.Throughput();
        if (ns.s == CldStrategy::kLocal) local_tp = o.Throughput();
        if (ns.legacy) best_legacy_tp = std::max(best_legacy_tp, o.Throughput());
      }
      if (ns.s == CldStrategy::kSteal) {
        steal_imb_worst = std::max(steal_imb_worst, o.Imbalance());
      }
    }
  }

  // Shape checks (virtual-time, so they hold on any host):
  //  * work stealing completes the single-source Zipf(1.2) workload at
  //    least 1.5x faster than leaving everything on the source PE, and
  //    faster than every legacy strategy;
  //  * its busy-time imbalance stays within the 1.25 acceptance bound on
  //    both shapes.
  const bool beats_local = steal_tp >= 1.5 * local_tp;
  const bool beats_legacy = steal_tp > best_legacy_tp;
  const bool balanced = steal_imb_worst <= 1.25;
  const char* fail = relaxed ? "FAIL (relaxed)" : "FAIL";
  std::printf("# shape-check %-55s %s\n",
              "steal >= 1.5x local throughput on zipf12-burst",
              beats_local ? "PASS" : fail);
  std::printf("# shape-check %-55s %s\n",
              "steal beats every legacy strategy on zipf12-burst",
              beats_legacy ? "PASS" : fail);
  std::printf("# shape-check %-55s %s\n",
              "steal max/mean busy imbalance <= 1.25 on both shapes",
              balanced ? "PASS" : fail);
  const int json_rc = bench::JsonFlush();
  const bool ok = beats_local && beats_legacy && balanced;
  return (ok || relaxed) && json_rc == 0 ? 0 : 1;
}
