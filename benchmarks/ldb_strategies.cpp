// Ablation: seed load balancing strategies under a single-source burst
// (paper §3.3.1 — "Each one is often useful in a different situation.
// Depending on the application, the user is able to link in a different
// load balancing strategy").
//
// Workload: PE0 creates kSeeds seeds, each representing `grain_us` of
// simulated work.  Reports wall time to drain everything, the placement
// distribution, and the average hop count per strategy.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

#include "converse/converse.h"
#include "converse/util/timer.h"

using namespace converse;

namespace {

constexpr int kNpes = 4;
constexpr int kSeeds = 2000;
constexpr double kGrainUs = 20.0;

struct Outcome {
  double wall_ms;
  std::vector<long> placed;
  double avg_hops;
  long max_imbalance() const {
    long mx = 0, mn = kSeeds;
    for (long p : placed) {
      mx = p > mx ? p : mx;
      mn = p < mn ? p : mn;
    }
    return mx - mn;
  }
};

void SpinFor(double us) {
  const auto t0 = util::NowNs();
  while (static_cast<double>(util::NowNs() - t0) * 1e-3 < us) {
  }
}

Outcome RunStrategy(CldStrategy strat) {
  Outcome out;
  out.placed.assign(kNpes, 0);
  std::vector<std::atomic<long>> placed(kNpes);
  for (auto& p : placed) p.store(0);
  std::atomic<long> hops{0};
  std::atomic<int> done{0};
  std::atomic<double> wall_ms{0};

  RunConverse(kNpes, [&](int pe, int) {
    CldSetStrategy(strat);
    int work = CmiRegisterHandler([&](void* msg) {
      SpinFor(kGrainUs);
      ++placed[static_cast<std::size_t>(CmiMyPe())];
      CmiFree(msg);
      if (done.fetch_add(1) + 1 == kSeeds) ConverseBroadcastExit();
    });
    double t0 = 0;
    if (pe == 0) {
      t0 = CmiTimer();
      for (int i = 0; i < kSeeds; ++i) {
        CldEnqueue(CmiMakeMessage(work, nullptr, 0));
      }
    }
    CsdScheduler(-1);
    if (pe == 0) wall_ms = (CmiTimer() - t0) * 1e3;
    hops += static_cast<long>(CldSeedHops());
  });

  out.wall_ms = wall_ms.load();
  for (int i = 0; i < kNpes; ++i) out.placed[static_cast<std::size_t>(i)] = placed[static_cast<std::size_t>(i)].load();
  out.avg_hops = static_cast<double>(hops.load()) / kSeeds;
  return out;
}

const char* Name(CldStrategy s) {
  switch (s) {
    case CldStrategy::kLocal: return "local";
    case CldStrategy::kRandom: return "random";
    case CldStrategy::kNeighbor: return "neighbor";
    case CldStrategy::kCentral: return "central";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf(
      "# Seed load balancing strategies: %d seeds of ~%.0fus work created "
      "on PE0 of %d PEs\n",
      kSeeds, kGrainUs, kNpes);
  std::printf("# columns: strategy wall_ms placement(p0..p%d) max_imbalance "
              "avg_hops\n", kNpes - 1);
  double local_ms = 0;
  double best_balanced_ms = 1e18;
  for (CldStrategy s :
       {CldStrategy::kLocal, CldStrategy::kRandom, CldStrategy::kNeighbor,
        CldStrategy::kCentral}) {
    const Outcome o = RunStrategy(s);
    std::printf("%-9s %9.1f   [", Name(s), o.wall_ms);
    for (int i = 0; i < kNpes; ++i) {
      std::printf("%s%ld", i ? " " : "", o.placed[static_cast<std::size_t>(i)]);
    }
    std::printf("] %8ld %8.2f\n", o.max_imbalance(), o.avg_hops);
    if (s == CldStrategy::kLocal) local_ms = o.wall_ms;
    if (s == CldStrategy::kRandom || s == CldStrategy::kCentral) {
      best_balanced_ms =
          o.wall_ms < best_balanced_ms ? o.wall_ms : best_balanced_ms;
    }
  }
  // Shape: balancing strategies beat keeping everything on the source PE.
  // (On a 2-core host the speedup is bounded by real parallelism, so just
  // require an improvement, not a factor of kNpes.)
  const bool improves = best_balanced_ms < local_ms;
  std::printf("# shape-check %-55s %s\n",
              "a balancing strategy beats all-local placement",
              improves ? "PASS" : "FAIL");
  return improves ? 0 : 1;
}
