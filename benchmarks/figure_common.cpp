#include "figure_common.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_json.h"
#include "converse/converse.h"
#include "converse/util/timer.h"

namespace converse::bench {

std::vector<std::size_t> FigureSizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 16; s <= 64 * 1024; s *= 2) sizes.push_back(s);
  return sizes;
}

namespace {

/// JSON metric key: "<figure id>/<series>/<bytes>" with spaces flattened.
std::string MetricKey(const char* figure_id, const char* series,
                      std::size_t size) {
  std::string key(figure_id);
  for (char& c : key) {
    if (c == ' ') c = '_';
  }
  key += '/';
  key += series;
  key += '/';
  key += std::to_string(size);
  return key;
}

double Interp(const std::vector<std::size_t>& xs,
              const std::vector<double>& ys, std::size_t x) {
  assert(!xs.empty());
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (x <= xs[i]) {
      const double f = static_cast<double>(x - xs[i - 1]) /
                       static_cast<double>(xs[i] - xs[i - 1]);
      return ys[i - 1] + f * (ys[i] - ys[i - 1]);
    }
  }
  return ys.back();
}

}  // namespace

double SoftwareCosts::PathUs(std::size_t size) const {
  return Interp(sizes, path_us, size);
}

double SoftwareCosts::SchedExtraUs(std::size_t size) const {
  return Interp(sizes, sched_extra_us, size);
}

SoftwareCosts MeasureSoftwareCosts(int reps_per_size) {
  SoftwareCosts out;
  out.sizes = FigureSizes();
  out.path_us.resize(out.sizes.size());
  out.sched_extra_us.resize(out.sizes.size());

  RunConverse(1, [&](int pe, int) {
    if (pe != 0) return;
    // Direct path: self-send through the machine queue, delivered straight
    // to its handler — what every language pays.
    int sink = CmiRegisterHandler([](void*) {});
    // Scheduler path: the §3.3 second-handler idiom — the network handler
    // grabs the buffer and re-enqueues it for a queued handler.
    int second = CmiRegisterHandler([](void* msg) { CmiFree(msg); });
    int first = CmiRegisterHandler([second](void* msg) {
      CmiGrabBuffer(&msg);
      CmiSetHandler(msg, second);
      CsdEnqueue(msg);
    });

    std::vector<char> payload(64 * 1024, 'x');
    for (std::size_t i = 0; i < out.sizes.size(); ++i) {
      const std::size_t s = out.sizes[i];
      // Warm up allocator caches.
      for (int r = 0; r < 64; ++r) {
        void* m = CmiMakeMessage(sink, payload.data(), s);
        CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
        CmiDeliverMsgs(1);
      }
      const auto t0 = util::NowNs();
      for (int r = 0; r < reps_per_size; ++r) {
        void* m = CmiMakeMessage(sink, payload.data(), s);
        CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
        CmiDeliverMsgs(1);
      }
      const auto t1 = util::NowNs();
      for (int r = 0; r < reps_per_size; ++r) {
        void* m = CmiMakeMessage(first, payload.data(), s);
        CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
        CmiDeliverMsgs(1);   // runs `first`: grab + enqueue
        CsdScheduler(1);     // dequeues and runs `second`
      }
      const auto t2 = util::NowNs();
      const double direct =
          static_cast<double>(t1 - t0) * 1e-3 / reps_per_size;
      const double sched =
          static_cast<double>(t2 - t1) * 1e-3 / reps_per_size;
      out.path_us[i] = direct;
      out.sched_extra_us[i] = sched > direct ? sched - direct : 0.0;
    }
  });
  return out;
}

int EmitFigure(const char* figure_id, const char* title,
               const NetModel& model, const SoftwareCosts& costs,
               bool with_sched_series) {
  std::printf("# %s: %s\n", figure_id, title);
  std::printf("# model: alpha=%.1fus per_byte=%.4fus packet=%zuB\n",
              model.alpha_us, model.per_byte_us, model.packet_bytes);
  std::printf("# columns: bytes native_us converse_us%s "
              "converse_1996est_us%s\n",
              with_sched_series ? " converse_sched_us" : "",
              with_sched_series ? " sched_1996est_us" : "");

  const auto sizes = FigureSizes();
  double max_gap_ratio_large = 0.0;
  bool converse_above_native = true;
  bool gap_shrinks_relatively = true;
  double first_rel_gap = -1.0, last_rel_gap = -1.0;

  for (std::size_t s : sizes) {
    const double native = model.OnewayUs(s);
    const double conv = native + costs.PathUs(s);
    const double conv_era = native + kEraCpuScale * costs.PathUs(s);
    if (with_sched_series) {
      const double sched = conv + costs.SchedExtraUs(s);
      const double sched_era =
          conv_era + kEraCpuScale * costs.SchedExtraUs(s);
      std::printf("%7zu %12.2f %12.2f %12.2f %12.2f %12.2f\n", s, native,
                  conv, sched, conv_era, sched_era);
      if (JsonEnabled()) {
        JsonAdd(MetricKey(figure_id, "converse_sched_us", s).c_str(), sched,
                "us");
      }
    } else {
      std::printf("%7zu %12.2f %12.2f %12.2f\n", s, native, conv, conv_era);
    }
    if (JsonEnabled()) {
      JsonAdd(MetricKey(figure_id, "converse_us", s).c_str(), conv, "us");
    }
    if (conv < native) converse_above_native = false;
    const double rel_gap = (conv - native) / native;
    if (first_rel_gap < 0) first_rel_gap = rel_gap;
    last_rel_gap = rel_gap;
    if (s >= 32 * 1024) {
      max_gap_ratio_large = rel_gap > max_gap_ratio_large
                                ? rel_gap
                                : max_gap_ratio_large;
    }
  }
  // "For large messages, the relative difference becomes negligible"
  // (§5.1): either the relative gap shrinks, or it stays under ~2%.
  gap_shrinks_relatively =
      last_rel_gap <= first_rel_gap * 1.05 + 1e-9 || last_rel_gap < 0.02;

  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::printf("# shape-check %-55s %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) ++failures;
  };
  check(converse_above_native,
        "Converse sits above native at every size (overhead >= 0)");
  check(gap_shrinks_relatively,
        "relative Converse overhead does not grow with message size");
  check(max_gap_ratio_large < 0.25,
        "overhead is negligible relative to large-message cost");
  if (with_sched_series) {
    const double extra_small = costs.SchedExtraUs(sizes.front());
    const double extra_large = costs.SchedExtraUs(sizes.back());
    const double conv_large =
        model.OnewayUs(sizes.back()) + costs.PathUs(sizes.back());
    check(extra_small > 0,
          "scheduling adds a positive cost for short messages");
    check(extra_large / conv_large < 0.05,
          "scheduling cost is relatively negligible for large messages");
    const double era_small = kEraCpuScale * extra_small;
    check(era_small > 2.0 && era_small < 80.0,
          "era-scaled scheduling adder is in the paper's 9-15us regime");
  }
  if (JsonEnabled()) {
    JsonAdd(MetricKey(figure_id, "shape_failures", 0).c_str(),
            static_cast<double>(failures), "count");
  }
  std::printf("\n");
  return failures;
}

}  // namespace converse::bench
