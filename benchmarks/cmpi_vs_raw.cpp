// The §3.1.3 minimality argument, quantified: "MPI provides a 'receive'
// call based on context, tag and source processor ... The overhead of
// maintaining messages indexed for such retrieval or for maintaining
// delivery sequence is unnecessary for many applications."
//
// Measures the per-message local software cost of four retrieval
// disciplines over the same machine path (self-send, 64 B payload):
//   raw       — handler dispatch only (the Converse default)
//   sm        — tag+source matched retrieval (Cmm-backed)
//   cmpi      — MPI-style: communicator + tag + source + pairwise FIFO
//   cmpi-ooo  — cmpi while 32 unexpected messages sit buffered
#include <cstdio>
#include <cstring>

#include "converse/converse.h"
#include "converse/langs/cmpi.h"
#include "converse/langs/sm.h"
#include "converse/util/timer.h"

using namespace converse;
namespace M = converse::mpi;

namespace {

constexpr int kReps = 100000;
constexpr std::size_t kPayload = 64;

double PerMsgUs(std::int64_t t0, std::int64_t t1) {
  return static_cast<double>(t1 - t0) * 1e-3 / kReps;
}

}  // namespace

int main() {
  std::printf("# Retrieval-discipline cost over the same machine path\n");
  std::printf("# (self-send, %zu-byte payload, %d reps)\n", kPayload, kReps);
  double raw_us = 0, sm_us = 0, mpi_us = 0, mpi_backlog_us = 0;

  RunConverse(1, [&](int pe, int) {
    if (pe != 0) return;
    char buf[kPayload];
    std::memset(buf, 'm', sizeof(buf));

    // raw: plain handler dispatch.
    int sink = CmiRegisterHandler([](void*) {});
    {
      const auto t0 = util::NowNs();
      for (int i = 0; i < kReps; ++i) {
        void* m = CmiMakeMessage(sink, buf, sizeof(buf));
        CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
        CmiDeliverMsgs(1);
      }
      raw_us = PerMsgUs(t0, util::NowNs());
    }

    // sm: tagged retrieval.
    {
      char out[kPayload];
      const auto t0 = util::NowNs();
      for (int i = 0; i < kReps; ++i) {
        sm::SmSend(0, 7, buf, sizeof(buf));
        sm::SmRecv(out, sizeof(out), 7);
      }
      sm_us = PerMsgUs(t0, util::NowNs());
    }

    // cmpi: full MPI-style matching + sequence bookkeeping.
    {
      char out[kPayload];
      const auto t0 = util::NowNs();
      for (int i = 0; i < kReps; ++i) {
        M::Send(buf, sizeof(buf), 0, 7, M::kCommWorld);
        M::Recv(out, sizeof(out), 0, 7, M::kCommWorld);
      }
      mpi_us = PerMsgUs(t0, util::NowNs());
    }

    // cmpi with an unexpected-message backlog in the mailbox.
    {
      for (int i = 0; i < 32; ++i) {
        M::Send(buf, sizeof(buf), 0, 1000 + i, M::kCommWorld);
      }
      CmiDeliverMsgs(-1);  // park them all in the unexpected queue
      char out[kPayload];
      const auto t0 = util::NowNs();
      for (int i = 0; i < kReps; ++i) {
        M::Send(buf, sizeof(buf), 0, 7, M::kCommWorld);
        M::Recv(out, sizeof(out), 0, 7, M::kCommWorld);
      }
      mpi_backlog_us = PerMsgUs(t0, util::NowNs());
    }
  });

  std::printf("%-34s %8.3f us/msg\n", "raw handler dispatch", raw_us);
  std::printf("%-34s %8.3f us/msg  (+%.3f)\n", "sm tag retrieval", sm_us,
              sm_us - raw_us);
  std::printf("%-34s %8.3f us/msg  (+%.3f)\n", "cmpi (MPI-style)", mpi_us,
              mpi_us - raw_us);
  std::printf("%-34s %8.3f us/msg  (+%.3f)\n",
              "cmpi + 32-msg unexpected backlog", mpi_backlog_us,
              mpi_backlog_us - raw_us);

  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::printf("# claim-check %-52s %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) ++failures;
  };
  // The paper's point, both directions: MPI-style retrieval is buildable
  // efficiently on the MMI, *and* it costs real overhead that non-users
  // never pay.
  check(mpi_us < raw_us * 20,
        "MPI-style retrieval is efficient on the minimal interface");
  check(mpi_us > raw_us,
        "retrieval/order bookkeeping costs more than raw dispatch");
  return failures == 0 ? 0 : 1;
}
