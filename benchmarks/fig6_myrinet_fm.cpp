// Reproduces Figure 6: Fast Messages on Myrinet-connected Suns — the one
// figure where the paper adds the "with scheduling" series (each handler
// re-enqueues its message through the scheduler queue; the cost only
// queue-using languages such as Charm pay).
#include <cstdio>
#include <cstdlib>
#include "bench_json.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace converse;
  bench::JsonInit("fig6_myrinet_fm", argc, argv);
  const auto costs =
      bench::MeasureSoftwareCosts(bench::QuickRun() ? 300 : 3000);
  int failures = bench::EmitFigure(
      "Figure 6", "FM Message Passing Performance (Myrinet Suns)",
      netmodels::MyrinetFm(), costs, /*with_sched_series=*/true);
  // Paper anchors: native FM ~25us at <=128B, Converse ~31us.
  const NetModel m = netmodels::MyrinetFm();
  const double native128 = m.OnewayUs(128);
  const double conv128 =
      native128 + bench::kEraCpuScale * costs.PathUs(128);
  const bool anchor =
      native128 > 17 && native128 < 33 && conv128 > native128 &&
      conv128 < native128 + 25;
  std::printf("# shape-check %-55s %s\n",
              "native ~25us and Converse a few us above at 128 B",
              anchor ? "PASS" : "FAIL");
  if (!anchor) ++failures;
  if (bench::JsonFlush() != 0) return EXIT_FAILURE;
  return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
