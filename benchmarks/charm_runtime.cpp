// Charm-runtime costs: what the message-driven object layer adds on top
// of raw Converse messages — entry-method invocation throughput (local
// and remote), chare-array reduction rate, and quiescence-detection
// latency.  These are the §5.1 "scheduling cost is paid only by languages
// such as Charm" numbers, seen from the language side.
#include <atomic>
#include <cstdio>
#include <cstring>

#include "converse/converse.h"
#include "converse/langs/charm.h"
#include "converse/util/timer.h"

using namespace converse;
using namespace converse::charm;

namespace {

struct Counter : Chare {
  long n = 0;
  Counter(const void*, std::size_t) {}
  void Bump(const void*, std::size_t) { ++n; }
};

double LocalInvokeUs(int reps) {
  std::atomic<double> us{0};
  RunConverse(1, [&](int, int) {
    const int type = RegisterChareType<Counter>("counter");
    const int bump = RegisterEntryMethod<Counter>(&Counter::Bump);
    CreateChare(type, nullptr, 0, 0);
    CsdScheduler(1);
    const ChareId id{0, 1};
    const auto t0 = util::NowNs();
    for (int i = 0; i < reps; ++i) {
      SendToChare(id, bump, nullptr, 0);
      CsdScheduler(1);
    }
    us = static_cast<double>(util::NowNs() - t0) * 1e-3 / reps;
  });
  return us.load();
}

double RemoteInvokeUs(int reps) {
  std::atomic<double> us{0};
  RunConverse(2, [&](int pe, int) {
    const int type = RegisterChareType<Counter>("counter");
    const int bump = RegisterEntryMethod<Counter>(&Counter::Bump);
    if (pe == 0) {
      CreateChare(type, nullptr, 0, 1);
      StartQuiescence([] { CsdExitScheduler(); });
      CsdScheduler(-1);  // wait until the chare exists on PE1
      const ChareId id{1, 1};
      const auto t0 = util::NowNs();
      for (int i = 0; i < reps; ++i) {
        SendToChare(id, bump, nullptr, 0);
      }
      StartQuiescence([] { ConverseBroadcastExit(); });
      CsdScheduler(-1);
      us = static_cast<double>(util::NowNs() - t0) * 1e-3 / reps;
    } else {
      CsdScheduler(-1);
    }
  });
  return us.load();
}

double ArrayReductionUs(int nelems, int rounds) {
  std::atomic<double> us{0};
  RunConverse(2, [&](int pe, int) {
    struct Elem : ArrayElement {
      Elem(int, const void*, std::size_t) {}
    };
    const int type = RegisterArrayElementType<Elem>("elem");
    static int contrib_entry;
    static int client;
    static int aid;
    static int remaining;
    static std::int64_t t0_ns;
    remaining = rounds;
    client = CmiRegisterHandler([&us, rounds](void* msg) {
      CmiFree(msg);
      if (--remaining > 0) {
        BroadcastToArray(aid, contrib_entry, nullptr, 0);
        return;
      }
      us = static_cast<double>(util::NowNs() - t0_ns) * 1e-3 / rounds;
      ConverseBroadcastExit();
    });
    contrib_entry = RegisterEntry([](Chare* c, const void*, std::size_t) {
      auto* e = static_cast<ArrayElement*>(c);
      const std::int64_t v = 1;
      ArrayContribute(e, &v, sizeof(v), CmiReducerSumI64(), client);
    });
    if (pe == 0) {
      aid = CreateArray(type, nelems, nullptr, 0);
      CsdScheduler(1);
      t0_ns = util::NowNs();
      BroadcastToArray(aid, contrib_entry, nullptr, 0);
    }
    CsdScheduler(-1);
  });
  return us.load();
}

double QdLatencyUs(int reps) {
  std::atomic<double> us{0};
  RunConverse(2, [&](int pe, int) {
    static int remaining;
    remaining = reps;
    static std::int64_t t0_ns;
    if (pe == 0) {
      std::function<void()> again = [&us, &again, reps] {
        if (--remaining > 0) {
          StartQuiescence(again);
          return;
        }
        us = static_cast<double>(util::NowNs() - t0_ns) * 1e-3 / reps;
        ConverseBroadcastExit();
      };
      t0_ns = util::NowNs();
      StartQuiescence(again);
      CsdScheduler(-1);
    } else {
      CsdScheduler(-1);
    }
  });
  return us.load();
}

}  // namespace

int main() {
  std::printf("# Charm-layer runtime costs (on the in-process machine)\n");
  const double local = LocalInvokeUs(50000);
  std::printf("%-44s %9.3f us\n", "local entry invocation (queued+dispatch)",
              local);
  const double remote = RemoteInvokeUs(20000);
  std::printf("%-44s %9.3f us\n",
              "remote entry invocation (pipelined, amortized)", remote);
  const double red = ArrayReductionUs(64, 500);
  std::printf("%-44s %9.3f us\n",
              "64-element array reduction (full round)", red);
  const double qd = QdLatencyUs(300);
  std::printf("%-44s %9.3f us\n",
              "quiescence detection on an idle 2-PE machine", qd);

  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::printf("# claim-check %-52s %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) ++failures;
  };
  check(local < 10.0, "local entry under 10 us");
  check(red < 5000.0, "array reduction round under 5 ms");
  check(qd < 5000.0, "QD round under 5 ms");
  return failures == 0 ? 0 : 1;
}
