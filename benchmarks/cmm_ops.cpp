// Ablation: message manager operations (paper §3.2.1) — insert, tag
// retrieval, wildcard probe, at the mailbox depths blocking receives see.
#include <benchmark/benchmark.h>

#include <vector>

#include "converse/cmm.h"
#include "converse/util/rng.h"

using namespace converse;

static void BM_CmmPutGetSameTag(benchmark::State& state) {
  MSG_MNGR* mm = CmmNew();
  const char payload[64] = {};
  char out[64];
  for (auto _ : state) {
    CmmPut(mm, payload, 7, sizeof(payload));
    benchmark::DoNotOptimize(CmmGet(mm, out, 7, sizeof(out), nullptr));
  }
  CmmFree(mm);
}
BENCHMARK(BM_CmmPutGetSameTag);

static void BM_CmmGetWithBacklog(benchmark::State& state) {
  // Retrieval cost when `depth` non-matching messages sit in front — the
  // linear-scan price of an indexed mailbox.
  const int depth = static_cast<int>(state.range(0));
  MSG_MNGR* mm = CmmNew();
  const char payload[16] = {};
  for (int i = 0; i < depth; ++i) CmmPut(mm, payload, 1, sizeof(payload));
  char out[16];
  for (auto _ : state) {
    CmmPut(mm, payload, 2, sizeof(payload));
    benchmark::DoNotOptimize(CmmGet(mm, out, 2, sizeof(out), nullptr));
  }
  state.SetLabel("non-matching backlog=" + std::to_string(depth));
  CmmFree(mm);
}
BENCHMARK(BM_CmmGetWithBacklog)->Arg(0)->Arg(8)->Arg(64)->Arg(512);

static void BM_CmmWildcardProbe(benchmark::State& state) {
  MSG_MNGR* mm = CmmNew();
  const char payload[16] = {};
  for (int i = 0; i < 32; ++i) CmmPut(mm, payload, i, sizeof(payload));
  int rettag = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CmmProbe(mm, CmmWildCard, &rettag));
  }
  CmmFree(mm);
}
BENCHMARK(BM_CmmWildcardProbe);

static void BM_CmmTwoTagGet(benchmark::State& state) {
  MSG_MNGR* mm = CmmNew();
  const char payload[16] = {};
  char out[16];
  for (auto _ : state) {
    CmmPut2(mm, payload, 5, 9, sizeof(payload));
    benchmark::DoNotOptimize(
        CmmGet2(mm, out, 5, CmmWildCard, sizeof(out), nullptr, nullptr));
  }
  CmmFree(mm);
}
BENCHMARK(BM_CmmTwoTagGet);

static void BM_CmmChurn(benchmark::State& state) {
  // Mixed workload: random tags in, random tags out (PVM-style traffic).
  MSG_MNGR* mm = CmmNew();
  util::Xoshiro256 rng(3);
  const char payload[32] = {};
  char out[32];
  for (auto _ : state) {
    const int tag = static_cast<int>(rng.Below(16));
    CmmPut(mm, payload, tag, sizeof(payload));
    const int want = static_cast<int>(rng.Below(16));
    if (CmmGet(mm, out, want, sizeof(out), nullptr) < 0) {
      benchmark::DoNotOptimize(CmmGet(mm, out, CmmWildCard, sizeof(out),
                                      nullptr));
    }
  }
  CmmFree(mm);
}
BENCHMARK(BM_CmmChurn);

BENCHMARK_MAIN();
