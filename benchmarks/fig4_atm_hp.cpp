// Reproduces Figure 4: "Message Passing Performance on ATM-connected HPs".
#include <cstdlib>
#include "figure_common.h"

int main() {
  using namespace converse;
  const auto costs = bench::MeasureSoftwareCosts();
  const int failures = bench::EmitFigure(
      "Figure 4", "Message Passing Performance on ATM-connected HPs",
      netmodels::AtmHp(), costs, /*with_sched_series=*/false);
  return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
