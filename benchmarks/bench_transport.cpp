// Socket-transport benchmark: message rate and bandwidth between two REAL
// OS processes over the batched socket backend (DESIGN.md "Transport
// interface"), plus a loopback-memcpy baseline to anchor the bandwidth
// number to what one plain copy of the same bytes costs on this host.
//
// The benchmark forks itself: the parent hosts node 0 (PE 0, the driver
// and the side that measures/report), the child hosts node 1 (PE 1, the
// echo side).  Rendezvous is a private directory of Unix sockets.
//
//   phase 1 — 64 B message rate.  PE 0 streams bursts of small messages
//     with aggregation ON and frames sized to the wire (64 KiB, so one
//     sendmsg carries hundreds of messages); PE 1 acks once per burst.
//     This is the transport acceptance metric: the wire unit is the
//     FRAME, so small-message rate survives the syscall boundary.
//   phase 2 — 64 KiB bandwidth.  Large messages bypass frames and travel
//     one record each (sendmsg gathers the body straight from message
//     memory); PE 1 acks every window.  Reported in Gbit/s and as a
//     fraction of the loopback floor.
//
// The "loopback memcpy-equivalent" baseline is measured, not assumed: the
// same two processes move the same volume through a raw socketpair in
// 64 KiB writes.  That is exactly the memcpy work the kernel performs for
// a loopback wire (user->kernel on write, kernel->user on read) under the
// same core budget, so transport/loopback isolates what OUR layer adds
// (framing, the receive-side message copy, acks) rather than comparing a
// scheduled two-process pipeline against one cache-hot memcpy loop.  The
// single-copy memcpy number is still printed as a reference point.
//
// Both processes run on whatever cores the host has (the dev host has
// ONE, so sender and receiver time-slice; the numbers are a conservative
// floor, not a NIC ceiling).
//
// Flags: --json[=path], --quick, --relaxed (report shape checks without
// gating the exit code — for sanitizer builds and noisy shared runners).
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "converse/converse.h"

using namespace converse;
using namespace converse::bench;

namespace {

struct Shape {
  long small_msgs = 600000;        // phase 1 total messages
  int small_burst = 4096;          // messages per ack
  std::size_t small_bytes = 64;    // phase 1 payload
  long big_msgs = 3072;            // phase 2 total messages (192 MiB)
  int big_window = 64;             // large messages per ack
  std::size_t big_bytes = 65536;   // phase 2 payload
};

struct WireNumbers {
  double msgs_per_sec = 0.0;
  double gbps = 0.0;
};

// One machine, both phases; runs in BOTH processes (mynode selects the
// role: node 0 = PE 0 drives and measures, node 1 = PE 1 echoes acks).
WireNumbers RunWire(const Shape& sh, int mynode, const char* rdv) {
  WireNumbers out;
  MachineConfig cfg;
  cfg.npes = 2;
  cfg.nnodes = 2;
  cfg.transport = CmiTransport::kSocket;
  cfg.mynode = mynode;
  cfg.rendezvous_dir = rdv;
  cfg.wire_timeout_ms = 30000;
  // Frames ARE the wire unit: size them so a burst of 64 B messages
  // crosses the socket in a handful of sendmsg calls.
  cfg.aggregate_sends = 1;
  cfg.agg_frame_bytes = 65536;
  cfg.agg_frame_msgs = 8192;
  RunConverse(cfg, [&](int pe, int) {
    int acks = 0;
    int ack = CmiRegisterHandler([&acks](void*) { ++acks; });

    // Echo side: one ack per phase-1 burst, one per phase-2 window.
    long got_small = 0, got_big = 0;
    int sink_small = CmiRegisterHandler([&](void*) {
      if (++got_small % sh.small_burst == 0) {
        void* a = CmiMakeMessage(ack, nullptr, 0);
        CmiSyncSendAndFree(0, CmiMsgTotalSize(a), a);
        CmiFlush();  // the ack gates the sender: never let it sit batched
      }
    });
    int sink_big = CmiRegisterHandler([&](void*) {
      if (++got_big % sh.big_window == 0) {
        void* a = CmiMakeMessage(ack, nullptr, 0);
        CmiSyncSendAndFree(0, CmiMsgTotalSize(a), a);
        CmiFlush();
      }
    });

    if (pe != 0) {
      CsdScheduler(-1);  // echo until the driver broadcasts exit
      return;
    }
    (void)sink_small;
    (void)sink_big;

    // ---- phase 1: 64 B message rate ----
    {
      std::vector<char> payload(sh.small_bytes, 'r');
      void* m = CmiMakeMessage(sink_small, payload.data(), payload.size());
      const unsigned msz = static_cast<unsigned>(CmiMsgTotalSize(m));
      const long bursts = sh.small_msgs / sh.small_burst;
      const double t0 = CmiTimer();
      for (long b = 0; b < bursts; ++b) {
        for (int i = 0; i < sh.small_burst; ++i) {
          CmiSyncSend(1, msz, m);
        }
        CmiFlush();
        CsdScheduler(1);  // block for this burst's ack
      }
      const double dt = CmiTimer() - t0;
      CmiFree(m);
      const long sent = bursts * sh.small_burst;
      out.msgs_per_sec = dt > 0 ? static_cast<double>(sent) / dt : 0.0;
      (void)acks;
    }

    // ---- phase 2: 64 KiB bandwidth ----
    {
      // Build-in-place sends: allocate, stamp the handler, hand the
      // message to the wire (uninitialized payload — the socketpair
      // baseline does not regenerate its buffer content either).
      // 64 KiB ON THE WIRE: payload sized so header + payload lands
      // exactly on the pool's top size class.
      const std::size_t body =
          sh.big_bytes - static_cast<std::size_t>(CmiMsgHeaderSizeBytes());
      const long windows = sh.big_msgs / sh.big_window;
      const double t0 = CmiTimer();
      for (long w = 0; w < windows; ++w) {
        for (int i = 0; i < sh.big_window; ++i) {
          void* m = CmiMakeMessage(sink_big, nullptr, body);
          CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
        }
        CmiFlush();
        CsdScheduler(1);
      }
      const double dt = CmiTimer() - t0;
      const double bytes =
          static_cast<double>(windows * sh.big_window) *
          static_cast<double>(sh.big_bytes);
      out.gbps = dt > 0 ? bytes * 8.0 / dt / 1e9 : 0.0;
    }

    ConverseBroadcastExit();
  });
  return out;
}

// The loopback floor: the phase-2 volume through a raw socketpair between
// two forked processes, written in 64 KiB chunks.  This is the kernel's
// own memcpy-equivalent of a loopback wire — the two unavoidable copies
// plus syscalls and scheduling — with none of our framing on top.
double LoopbackGbps(const Shape& sh) {
  int sv[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return 0.0;
  for (int i = 0; i < 2; ++i) {
    const int bytes = 1 << 20;  // match the transport's socket buffers
    setsockopt(sv[i], SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
    setsockopt(sv[i], SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
  }
  const long total = sh.big_msgs * static_cast<long>(sh.big_bytes);
  const pid_t child = fork();
  if (child < 0) {
    close(sv[0]);
    close(sv[1]);
    return 0.0;
  }
  if (child == 0) {  // sink: read everything, then ack one byte
    close(sv[0]);
    std::vector<char> buf(sh.big_bytes);
    long got = 0;
    while (got < total) {
      const ssize_t n = read(sv[1], buf.data(), buf.size());
      if (n <= 0) _exit(1);
      got += n;
    }
    const char ok = 1;
    (void)!write(sv[1], &ok, 1);
    _exit(0);
  }
  close(sv[1]);
  std::vector<char> buf(sh.big_bytes, 'p');
  const auto t0 = std::chrono::steady_clock::now();
  long sent = 0;
  while (sent < total) {
    const ssize_t n = write(sv[0], buf.data(), buf.size());
    if (n <= 0) break;
    sent += n;
  }
  char ok = 0;
  (void)!read(sv[0], &ok, 1);  // ack marks the last byte ARRIVED
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  close(sv[0]);
  int status = 0;
  waitpid(child, &status, 0);
  if (sent < total || ok != 1) return 0.0;
  return dt > 0 ? static_cast<double>(total) * 8.0 / dt / 1e9 : 0.0;
}

// Single-copy cache-hot memcpy over one payload: a reference point only
// (no cross-process transfer can reach it — the kernel alone does two
// such copies; docs/PERFORMANCE.md "Wire format and batching").
double MemcpyGbps(const Shape& sh) {
  std::vector<char> src(sh.big_bytes, 'm'), dst(sh.big_bytes);
  const long reps = sh.big_msgs * 8 < 2000 ? 2000 : sh.big_msgs * 8;
  // Warm up, then time.
  std::memcpy(dst.data(), src.data(), sh.big_bytes);
  const auto t0 = std::chrono::steady_clock::now();
  for (long i = 0; i < reps; ++i) {
    std::memcpy(dst.data(), src.data(), sh.big_bytes);
    src[static_cast<std::size_t>(i) % sh.big_bytes] =
        static_cast<char>(i);  // defeat copy elision
  }
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return dt > 0
             ? static_cast<double>(reps) *
                   static_cast<double>(sh.big_bytes) * 8.0 / dt / 1e9
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  JsonInit("bench_transport", argc, argv);
  bool relaxed = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--relaxed") == 0) relaxed = true;
  }
  Shape sh;
  if (QuickRun()) {
    sh.small_msgs = 60000;
    sh.big_msgs = 768;
  }

  char rdv[] = "/tmp/bench_transport.XXXXXX";
  if (mkdtemp(rdv) == nullptr) {
    std::perror("bench_transport: mkdtemp");
    return 1;
  }

  const pid_t child = fork();
  if (child < 0) {
    std::perror("bench_transport: fork");
    return 1;
  }
  if (child == 0) {
    RunWire(sh, 1, rdv);  // echo side: no output
    _exit(0);
  }

  const WireNumbers w = RunWire(sh, 0, rdv);
  int status = 0;
  waitpid(child, &status, 0);
  for (int node = 0; node < 2; ++node) {
    const std::string sock =
        std::string(rdv) + "/node" + std::to_string(node) + ".sock";
    unlink(sock.c_str());
  }
  rmdir(rdv);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "bench_transport: echo process failed\n");
    return 1;
  }

  const double loopback_gbps = LoopbackGbps(sh);
  const double memcpy_gbps = MemcpyGbps(sh);
  const double frac = loopback_gbps > 0 ? w.gbps / loopback_gbps : 0.0;

  std::printf("bench_transport (2 processes, unix sockets, frames on)\n");
  std::printf("  64 B message rate : %10.0f msgs/s\n", w.msgs_per_sec);
  std::printf("  64 KiB bandwidth  : %10.2f Gbit/s\n", w.gbps);
  std::printf("  loopback floor    : %10.2f Gbit/s (raw socketpair)\n",
              loopback_gbps);
  std::printf("  memcpy reference  : %10.2f Gbit/s (single copy)\n",
              memcpy_gbps);
  std::printf("  wire vs loopback  : %10.2f\n", frac);

  JsonAdd("msgs_per_sec_64B/2proc", w.msgs_per_sec, "msgs_per_sec");
  JsonAdd("bandwidth_gbps_64KiB/2proc", w.gbps, "gbps");
  JsonAdd("loopback_gbps_64KiB/2proc", loopback_gbps, "gbps");
  JsonAdd("memcpy_gbps_64KiB/1copy", memcpy_gbps, "gbps");
  JsonAdd("bandwidth_vs_loopback", frac, "ratio");
  const int rc = JsonFlush();
  if (rc != 0) return rc;

  // Shape checks (the transport acceptance criteria); --relaxed reports
  // without gating, for sanitizer builds and noisy runners.
  bool ok = true;
  if (w.msgs_per_sec < 5e6) {
    std::fprintf(stderr,
                 "bench_transport: 64 B rate %.0f < 5M msgs/s target\n",
                 w.msgs_per_sec);
    ok = false;
  }
  // The raw floor spends NOTHING in user space, so on a single-core host
  // every cycle of framing/dispatch/scheduling is stolen from the copy
  // loop and the ratio lands near 0.3; with >=2 cores the comm threads
  // overlap the copies and the ratio climbs toward the 50% design goal.
  // Gate at 0.12 as a regression guard that holds on the worst host.
  if (frac < 0.12) {
    std::fprintf(stderr,
                 "bench_transport: bandwidth %.2f Gbit/s is %.0f%% of "
                 "the raw loopback floor (%.2f Gbit/s), guard 12%%\n",
                 w.gbps, frac * 100.0, loopback_gbps);
    ok = false;
  }
  return ok || relaxed ? 0 : 1;
}
