// Ablation: generalized-message dispatch mechanisms (paper §3.1.1 — "The
// function may be specified by a direct pointer or by an index into a
// table of functions. The latter method has the advantage of working even
// on heterogeneous machines, and requires less space than a pointer").
// Measures what the index indirection costs relative to a raw pointer.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "converse/handlers.h"
#include "converse/msg.h"

using namespace converse;

namespace {

std::uint64_t g_sink = 0;

void RawHandler(void* msg) {
  g_sink += detail::Header(msg)->total_size;
}

}  // namespace

/// Baseline: direct function-pointer call (a "native" dispatch).
static void BM_DirectFunctionPointer(benchmark::State& state) {
  void* msg = CmiAlloc(CmiMsgHeaderSizeBytes());
  void (*fp)(void*) = &RawHandler;
  benchmark::DoNotOptimize(fp);
  for (auto _ : state) {
    fp(msg);
    benchmark::DoNotOptimize(g_sink);
  }
  CmiFree(msg);
}
BENCHMARK(BM_DirectFunctionPointer);

/// Converse-style: index into a table of raw function pointers.
static void BM_IndexedFunctionTable(benchmark::State& state) {
  std::vector<void (*)(void*)> table(64, &RawHandler);
  void* msg = CmiAlloc(CmiMsgHeaderSizeBytes());
  CmiSetHandler(msg, 17);
  benchmark::DoNotOptimize(table);
  for (auto _ : state) {
    table[detail::Header(msg)->handler](msg);
    benchmark::DoNotOptimize(g_sink);
  }
  CmiFree(msg);
}
BENCHMARK(BM_IndexedFunctionTable);

/// What this implementation actually stores: an indexed std::function
/// (buys capturing lambdas for language runtimes).
static void BM_IndexedStdFunctionTable(benchmark::State& state) {
  std::vector<std::function<void(void*)>> table(64, &RawHandler);
  void* msg = CmiAlloc(CmiMsgHeaderSizeBytes());
  CmiSetHandler(msg, 17);
  benchmark::DoNotOptimize(table);
  for (auto _ : state) {
    table[detail::Header(msg)->handler](msg);
    benchmark::DoNotOptimize(g_sink);
  }
  CmiFree(msg);
}
BENCHMARK(BM_IndexedStdFunctionTable);

/// Message-header footprint comparison (the space argument from §3.1.1):
/// report bytes needed for an index vs a pointer, per million messages.
static void BM_HeaderFieldWrite(benchmark::State& state) {
  void* msg = CmiAlloc(CmiMsgHeaderSizeBytes());
  for (auto _ : state) {
    CmiSetHandler(msg, 21);
    benchmark::DoNotOptimize(detail::Header(msg)->handler);
  }
  state.SetLabel("index field: 4 bytes (pointer would be 8)");
  CmiFree(msg);
}
BENCHMARK(BM_HeaderFieldWrite);

BENCHMARK_MAIN();
