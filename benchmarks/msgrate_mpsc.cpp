// Message-rate benchmark: N-1 senders blast small messages at PE 0 (the
// many-producers/one-consumer shape that stresses the cross-PE delivery
// path).  This is the headline number for the lock-free in-queue work: the
// per-message cost here is one ring-slot reservation + release store on the
// sender and a lock-free pop on the receiver, where the mutex machine paid
// a destination-lock acquisition and a condvar notify per message.
//
// Senders run a 128-message credit window (the receiver acks each burst) so
// the measurement exercises the steady-state fast path rather than the
// overflow spill lane.  Reported metric: delivered messages per second at
// the receiver, best of 3 runs.
//
// Flags: --json[=path], --quick, --pes=N (default 4), --msgs=M per sender.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "converse/converse.h"

using namespace converse;

namespace {

constexpr int kBurst = 128;  // sender credit window (messages per ack)
constexpr std::size_t kPayload = 64;

double RunMsgRate(int npes, int msgs_per_sender) {
  const long total = static_cast<long>(npes - 1) * msgs_per_sender;
  std::atomic<double> rate{0.0};
  RunConverse(npes, [&](int pe, int np) {
    int ack = CmiRegisterHandler([](void*) {});
    // Receiver-side accounting lives in per-run locals captured by the
    // handler; only PE 0's handler instance ever runs.
    double t_first = 0.0;
    long received = 0;
    std::vector<int> per_sender(static_cast<std::size_t>(np), 0);
    int sink = CmiRegisterHandler([&, ack, total](void* msg) {
      if (received == 0) t_first = CmiTimer();
      ++received;
      const int src = CmiMsgSourcePe(msg);
      if (++per_sender[static_cast<std::size_t>(src)] == kBurst) {
        per_sender[static_cast<std::size_t>(src)] = 0;
        void* a = CmiMakeMessage(ack, nullptr, 0);
        CmiSyncSendAndFree(static_cast<unsigned>(src), CmiMsgTotalSize(a), a);
      }
      if (received == total) {
        const double dt = CmiTimer() - t_first;
        rate.store(dt > 0 ? static_cast<double>(total - 1) / dt : 0.0);
        ConverseBroadcastExit();
      }
    });

    if (pe == 0) {
      CsdScheduler(-1);
      return;
    }
    char payload[kPayload];
    std::memset(payload, 's', sizeof(payload));
    int sent_in_burst = 0;
    for (int i = 0; i < msgs_per_sender; ++i) {
      void* m = CmiMakeMessage(sink, payload, sizeof(payload));
      CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      if (++sent_in_burst == kBurst) {
        sent_in_burst = 0;
        void* a = CmiGetSpecificMsg(ack);
        (void)a;  // ack payload is empty; the MMI reclaims the buffer
      }
    }
    CsdScheduler(-1);  // wait for the exit broadcast
  });
  return rate.load();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonInit("msgrate_mpsc", argc, argv);
  int npes = 4;
  int msgs = bench::QuickRun() ? 8192 : 150000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pes=", 6) == 0) {
      npes = std::max(2, std::atoi(argv[i] + 6));
    } else if (std::strncmp(argv[i], "--msgs=", 7) == 0) {
      msgs = std::max(kBurst, std::atoi(argv[i] + 7));
    }
  }
  // msgs must be a multiple of the burst window so the final burst is acked.
  msgs -= msgs % kBurst;

  std::printf("# msgrate_mpsc: %d senders -> 1 receiver, %d msgs/sender, "
              "%zu B payload, burst %d\n",
              npes - 1, msgs, kPayload, kBurst);
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const double r = RunMsgRate(npes, msgs);
    std::printf("# rep %d: %.0f msgs/sec\n", rep, r);
    best = std::max(best, r);
  }
  std::printf("msgs_per_sec %14.0f\n", best);

  char metric[64];
  std::snprintf(metric, sizeof(metric), "msgs_per_sec/%dpe", npes);
  bench::JsonAdd(metric, best, "msgs_per_sec");

  // Sanity floor, not a perf gate: catches a hung or pathological machine.
  const bool ok = best > 50000.0;
  std::printf("# shape-check %-55s %s\n",
              "receiver sustains a sane message rate", ok ? "PASS" : "FAIL");
  const int json_rc = bench::JsonFlush();
  return ok && json_rc == 0 ? 0 : 1;
}
