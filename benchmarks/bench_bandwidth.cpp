// Zero-copy data-movement benchmark: shared-payload broadcast cost per
// destination vs. payload size, and large-message bandwidth vs. a raw
// memcpy of the same bytes.
//
// Broadcast: send-side cost of CmiSyncBroadcastAllAndFree at 8 PEs,
// normalized per destination, measured with the shared-payload path on
// (MachineConfig::bcast_share_min = 4096, the default) and off.  Below the
// threshold both configurations run the spanning-tree wrapper path and the
// numbers track each other; at and above it the shared path builds one
// refcounted block — one payload copy total instead of one per subtree
// hop — and per-destination cost collapses to the amortized copy plus a
// pointer push.
//
// Bandwidth: PE 1 streams large payloads into PE 0 through the
// CmiVectorSend -> CmiScatterRegister direct path (the sender's gather is
// written straight into the receiver's registered buffers: exactly one
// memcpy, no message allocation), and through plain CmiSyncSend (alloc +
// copy + cross-thread delivery, with the allocation recycled by the 64 KiB
// size classes and the oversize cache).  Both are reported as a fraction
// of single-thread memcpy bandwidth at the same size.
//
// Flags: --json[=path], --quick, --relaxed (report shape-checks but do not
// gate the exit code — noisy shared runners, sanitizer builds).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "converse/converse.h"
#include "converse/util/timer.h"

using namespace converse;

namespace {

/// Send-side cost (ns per destination PE) of a broadcast-all of
/// `payload_bytes`, with the shared path thresholded at `share_min`.
double BcastPerDestNs(int npes, int reps, std::size_t payload_bytes,
                      std::int64_t share_min) {
  constexpr int kWarmup = 32;
  double per_dest_ns = 0.0;
  MachineConfig cfg;
  cfg.npes = npes;
  cfg.aggregate_sends = 0;
  cfg.bcast_share_min = share_min;
  RunConverse(cfg, [&](int pe, int np) {
    const long expected = reps + kWarmup;
    long got = 0;
    int sink = CmiRegisterHandler([&](void*) {
      if (++got == expected) CsdExitScheduler();
    });
    if (pe == 0) {
      std::vector<char> payload(payload_bytes, 'b');
      for (int i = 0; i < kWarmup; ++i) {
        void* m = CmiMakeMessage(sink, payload.data(), payload.size());
        CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
      }
      const auto t0 = util::NowNs();
      for (int i = 0; i < reps; ++i) {
        void* m = CmiMakeMessage(sink, payload.data(), payload.size());
        CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
      }
      const auto t1 = util::NowNs();
      per_dest_ns = static_cast<double>(t1 - t0) / reps / np;
    }
    CsdScheduler(-1);
  });
  return per_dest_ns;
}

/// One-way large-message bandwidth (bytes/sec) PE 1 -> PE 0 through plain
/// CmiSyncSend (copy into a pooled message, cross-thread delivery).
double MessageBandwidth(std::size_t payload_bytes, int reps) {
  // A small credit window bounds in-flight bytes (8 x 1 MiB worst case) so
  // the receiver's frees keep feeding the sender's allocator; the ack
  // round-trip is noise next to the copies it gates.
  constexpr int kWindow = 8;
  std::atomic<double> bw{0.0};
  MachineConfig cfg;
  cfg.npes = 2;
  cfg.aggregate_sends = 0;
  RunConverse(cfg, [&](int pe, int) {
    int ack = CmiRegisterHandler([](void*) {});
    int done = CmiRegisterHandler([](void*) { CsdExitScheduler(); });
    long received = 0;
    int sink = CmiRegisterHandler([&, ack](void*) {
      if (++received % kWindow == 0) {
        void* a = CmiMakeMessage(ack, nullptr, 0);
        CmiSyncSendAndFree(1, CmiMsgTotalSize(a), a);
      }
    });
    if (pe == 0) {
      CsdScheduler(-1);  // until `done`
      return;
    }
    std::vector<char> payload(payload_bytes, 'x');
    void* m = CmiMakeMessage(sink, payload.data(), payload.size());
    const unsigned msz = static_cast<unsigned>(CmiMsgTotalSize(m));
    const auto send_all = [&](int n) {
      for (int i = 1; i <= n; ++i) {
        CmiSyncSend(0, msz, m);
        if (i % kWindow == 0) {
          void* a = CmiGetSpecificMsg(ack);
          (void)a;  // empty ack; the MMI reclaims the buffer
        }
      }
    };
    send_all(kWindow);  // warmup
    const auto t0 = util::NowNs();
    send_all(reps - reps % kWindow);
    const auto t1 = util::NowNs();
    CmiFree(m);
    bw.store(static_cast<double>(payload_bytes) * (reps - reps % kWindow) /
             (static_cast<double>(t1 - t0) * 1e-9));
    void* d = CmiMakeMessage(done, nullptr, 0);
    CmiSyncSendAndFree(0, CmiMsgTotalSize(d), d);
  });
  return bw.load();
}

/// One-way bandwidth (bytes/sec) through the zero-copy scatter landing:
/// the sender's CmiVectorSend writes straight into PE 0's registered
/// buffer (one memcpy total, no message allocation).
double ScatterBandwidth(std::size_t payload_bytes, int reps) {
  std::atomic<double> bw{0.0};
  std::atomic<bool> armed{false};
  std::atomic<bool> done{false};
  MachineConfig cfg;
  cfg.npes = 2;
  cfg.aggregate_sends = 0;
  RunConverse(cfg, [&](int pe, int) {
    int never = CmiRegisterHandler([](void*) {});
    if (pe == 0) {
      // No notification handler: the sender completes each transfer
      // synchronously (the gather is written inline), so the receiver has
      // nothing to process and sleeps through the timed loop — on an
      // oversubscribed host a polling receiver would steal cycles from
      // the very copies being measured.
      std::vector<char> landing(payload_bytes);
      std::uint32_t key_sink = 0;
      const int id = CmiScatterRegister(
          0, 0xB16D,
          {{0, sizeof(key_sink), &key_sink},
           {sizeof(std::uint32_t), landing.size(), landing.data()}},
          /*notify_handler=*/-1, /*persistent=*/true);
      armed.store(true, std::memory_order_release);
      while (!done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      CmiScatterCancel(id);
      return;
    }
    while (!armed.load(std::memory_order_acquire)) CsdSchedulePoll(1);
    const std::uint32_t key = 0xB16D;
    std::vector<char> src(payload_bytes, 'z');
    const int sizes[] = {sizeof(key), static_cast<int>(src.size())};
    const void* arrays[] = {&key, src.data()};
    for (int i = 0; i < 4; ++i) {  // warmup
      CmiReleaseCommHandle(CmiVectorSend(0, never, 2, sizes, arrays));
    }
    const auto t0 = util::NowNs();
    for (int i = 0; i < reps; ++i) {
      CmiReleaseCommHandle(CmiVectorSend(0, never, 2, sizes, arrays));
    }
    const auto t1 = util::NowNs();
    bw.store(static_cast<double>(payload_bytes) * reps /
             (static_cast<double>(t1 - t0) * 1e-9));
    done.store(true, std::memory_order_release);
  });
  return bw.load();
}

/// Single-thread memcpy bandwidth (bytes/sec) at the same transfer size —
/// the roofline the message paths are compared against.
double MemcpyBandwidth(std::size_t bytes, int reps) {
  std::vector<char> src(bytes, 's'), dst(bytes);
  for (int i = 0; i < 4; ++i) std::memcpy(dst.data(), src.data(), bytes);
  const auto t0 = util::NowNs();
  for (int i = 0; i < reps; ++i) {
    std::memcpy(dst.data(), src.data(), bytes);
    // Defeat dead-store elimination across iterations.
    asm volatile("" : : "r"(dst.data()) : "memory");
  }
  const auto t1 = util::NowNs();
  return static_cast<double>(bytes) * reps /
         (static_cast<double>(t1 - t0) * 1e-9);
}

double BestOf3(double (*fn)(std::size_t, int), std::size_t bytes, int reps) {
  double best = 0.0;
  for (int i = 0; i < 3; ++i) best = std::max(best, fn(bytes, reps));
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonInit("bench_bandwidth", argc, argv);
  bool relaxed = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--relaxed") == 0) relaxed = true;
  }
  const bool quick = bench::QuickRun();

  // --- broadcast send-side cost per destination, shared path on vs off ---
  constexpr int kBcastPes = 8;
  std::printf("# broadcast-all send side at %d PEs, per destination\n",
              kBcastPes);
  double bcast_speedup = 0.0;  // best on/off ratio among sizes >= 4 KiB
  for (std::size_t bytes :
       {std::size_t{64}, std::size_t{1024}, std::size_t{4096},
        std::size_t{65536}}) {
    // Keep the in-flight byte volume bounded: fewer reps at larger sizes.
    const int reps =
        std::max(64, static_cast<int>((quick ? 1 : 8) * 65536 / bytes));
    double on = 0.0, off = 0.0;
    for (int i = 0; i < (quick ? 3 : 5); ++i) {
      on = std::max(on, 1.0 / BcastPerDestNs(kBcastPes, reps, bytes, 4096));
      off = std::max(off, 1.0 / BcastPerDestNs(kBcastPes, reps, bytes, 0));
    }
    on = 1.0 / on;   // best-of kept the minimum time
    off = 1.0 / off;
    if (bytes >= 4096 && on > 0) {
      bcast_speedup = std::max(bcast_speedup, off / on);
    }
    std::printf("payload %6zu B: %9.1f ns/dest shared, %9.1f ns/dest "
                "unshared (%.2fx)\n",
                bytes, on, off, on > 0 ? off / on : 0.0);
    char metric[64];
    std::snprintf(metric, sizeof(metric), "broadcast_per_dest_ns/%zu",
                  bytes);
    bench::JsonAdd(metric, on, "ns");
    std::snprintf(metric, sizeof(metric), "broadcast_per_dest_ns_off/%zu",
                  bytes);
    bench::JsonAdd(metric, off, "ns");
  }
  bench::JsonAdd("bcast_shared_speedup_ge4096B/8pe", bcast_speedup, "x");

  // --- large-message bandwidth vs raw memcpy ---
  std::printf("# one-way large-message bandwidth, PE1 -> PE0\n");
  double scatter_frac_best = 0.0;
  for (std::size_t bytes :
       {std::size_t{64} * 1024, std::size_t{256} * 1024,
        std::size_t{1024} * 1024}) {
    const int reps = std::max(
        16, static_cast<int>((quick ? 64 : 512) * 1024 * 1024 / bytes));
    const double base = BestOf3(&MemcpyBandwidth, bytes, reps);
    const double msg = BestOf3(&MessageBandwidth, bytes, reps);
    const double sct = BestOf3(&ScatterBandwidth, bytes, reps);
    const double msg_frac = base > 0 ? msg / base : 0.0;
    const double sct_frac = base > 0 ? sct / base : 0.0;
    scatter_frac_best = std::max(scatter_frac_best, sct_frac);
    std::printf("%7zu KiB: memcpy %7.2f GB/s, message %7.2f GB/s (%.0f%%), "
                "scatter-direct %7.2f GB/s (%.0f%%)\n",
                bytes / 1024, base * 1e-9, msg * 1e-9, msg_frac * 100, sct * 1e-9,
                sct_frac * 100);
    char metric[64];
    std::snprintf(metric, sizeof(metric), "memcpy_gbps/%zuKiB",
                  bytes / 1024);
    bench::JsonAdd(metric, base * 1e-9, "GB_per_sec");
    std::snprintf(metric, sizeof(metric), "msg_bandwidth_gbps/%zuKiB",
                  bytes / 1024);
    bench::JsonAdd(metric, msg * 1e-9, "GB_per_sec");
    std::snprintf(metric, sizeof(metric), "scatter_bandwidth_gbps/%zuKiB",
                  bytes / 1024);
    bench::JsonAdd(metric, sct * 1e-9, "GB_per_sec");
    std::snprintf(metric, sizeof(metric), "scatter_memcpy_frac/%zuKiB",
                  bytes / 1024);
    bench::JsonAdd(metric, sct_frac, "x");
  }

  // Shape-checks: the shared broadcast must buy >= 3x per destination at
  // 4 KiB / 8 PEs, and the zero-copy scatter path must reach at least 90%
  // of memcpy bandwidth at some large size.
  const bool bcast_ok = bcast_speedup >= 3.0;
  const bool bw_ok = scatter_frac_best >= 0.9;
  std::printf("# shape-check %-52s %s\n",
              "shared broadcast >= 3x ns/dest at >= 4 KiB, 8 PEs",
              bcast_ok ? "PASS" : (relaxed ? "FAIL (relaxed)" : "FAIL"));
  std::printf("# shape-check %-52s %s\n",
              "scatter-direct >= 90% of memcpy bandwidth",
              bw_ok ? "PASS" : (relaxed ? "FAIL (relaxed)" : "FAIL"));
  const int json_rc = bench::JsonFlush();
  return ((bcast_ok && bw_ok) || relaxed) && json_rc == 0 ? 0 : 1;
}
