// Reproduces Figure 5: Cray T3D message passing performance, including the
// packetization-copy jump at 16 KB the paper calls out.
#include <cstdio>
#include <cstdlib>
#include "bench_json.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace converse;
  bench::JsonInit("fig5_t3d", argc, argv);
  const auto costs =
      bench::MeasureSoftwareCosts(bench::QuickRun() ? 300 : 3000);
  int failures = bench::EmitFigure(
      "Figure 5", "Message Passing Performance on the Cray T3D",
      netmodels::CrayT3D(), costs, /*with_sched_series=*/false);
  // Figure-specific shape: discontinuity at 16 KB.
  const NetModel m = netmodels::CrayT3D();
  const double below = m.OnewayUs(16 * 1024);
  const double above = m.OnewayUs(16 * 1024 + 1);
  const bool jump = (above - below) > 20.0 * m.per_byte_us;
  std::printf("# shape-check %-55s %s\n",
              "discontinuity at 16 KB (packetization copy)",
              jump ? "PASS" : "FAIL");
  if (!jump) ++failures;
  if (bench::JsonFlush() != 0) return EXIT_FAILURE;
  return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
