// Machine-readable benchmark results (BENCH_*.json trajectory tracking).
//
// Every benchmark that wants to publish numbers calls JsonInit() at the top
// of main, JsonAdd() once per measured metric, and JsonFlush() before
// returning.  Without `--json` on the command line the calls are no-ops and
// the benchmark's human-readable output is unchanged; with `--json` (to
// stdout) or `--json=path` (to a file) a single JSON object is emitted:
//
//   {"benchmark": "shmem_pingpong",
//    "metrics": [{"name": "oneway_us/64", "value": 1.34, "unit": "us"}, ...]}
//
// The schema is deliberately flat so `tools/` scripts and the CI perf-smoke
// job can validate and merge results without a JSON library: one object,
// one metrics array, numeric values only.
//
// `--quick` is parsed here too (QuickRun()): benchmarks that honor it scale
// their iteration counts down so CI smoke runs finish in seconds.
#pragma once

#include <cstddef>

namespace converse::bench {

/// Parse `--json[=path]` / `--quick` out of argv and remember the benchmark
/// name.  Call once at the top of main.
void JsonInit(const char* benchmark_name, int argc, char** argv);

/// True when `--json` was passed to JsonInit.
bool JsonEnabled();

/// True when `--quick` was passed: the benchmark should cut iteration
/// counts to smoke-test size.
bool QuickRun();

/// Record one metric (no-op unless JsonEnabled()).  `name` and `unit` must
/// be plain ASCII without quotes or backslashes.
void JsonAdd(const char* name, double value, const char* unit);

/// Record one quantile of a named distribution series (no-op unless
/// JsonEnabled()).  Emitted as a separate "percentiles" array of
///   {"series": "latency/0.8x", "quantile": 0.99, "value": 41.2,
///    "unit": "us"}
/// rows, added to the object only when at least one row was recorded — a
/// benchmark that never calls this keeps the original flat schema
/// unchanged.
void JsonAddPercentile(const char* series, double quantile, double value,
                       const char* unit);

/// Write the JSON object to the `--json` destination (no-op when disabled).
/// Returns 0 on success, 1 if the output file could not be written.
int JsonFlush();

}  // namespace converse::bench
