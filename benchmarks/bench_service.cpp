// Service-workload macro benchmark: tail latency vs offered rate, with
// overload shedding (docs/PERFORMANCE.md "Service workload").
//
// Runs the converse/svc.h request/response service under the deterministic
// simulation backend, so the latency distribution is exact virtual time —
// bit-for-bit reproducible across machines and immune to host load, which
// is what lets CI compare BENCH_service.json across commits.
//
// One run per offered rate (0.5x, 0.8x, 1.2x of analytic capacity):
// p50/p99/p999 of admitted-request latency, goodput, and shed fraction.
// The 1.2x point is the SLO demonstration: admission control must keep the
// admitted-request p99 inside the queue-cap bound and goodput within 90%
// of saturation while a fifth of the offered load is refused.
//
//   bench_service [--quick] [--relaxed] [--json[=path]]
//
// --quick cuts the request count to smoke size; --relaxed reports SLO
// violations without failing the exit code (for perf-smoke runs where the
// numbers are recorded but not gating).
#include <cstdio>
#include <cstring>

#include "bench_json.h"
#include "converse/machine.h"
#include "converse/sim.h"
#include "converse/svc.h"

using namespace converse;
using namespace converse::bench;

namespace {

constexpr int kNpes = 4;

struct RateResult {
  svc::SvcPeStats totals;
  double virtual_us = 0.0;
  double goodput_rps = 0.0;   // completed requests per virtual second
  double shed_fraction = 0.0;
};

RateResult RunAtRate(const svc::SvcConfig& cfg, double rate_per_pe,
                     std::uint64_t requests_per_pe) {
  RateResult out;
  svc::Service s(cfg, kNpes);
  SimConfig sim;
  sim.seed = 12;
  SimReport report;
  sim.report = &report;
  MachineConfig m;
  m.npes = kNpes;
  m.seed = 12;
  m.sim = &sim;
  m.aggregate_sends = 0;
  svc::SvcLoad load;
  load.rate_per_pe = rate_per_pe;
  load.requests_per_pe = requests_per_pe;
  load.arrival = svc::Arrival::kPoisson;
  load.seed = 12;
  RunConverse(m, [&](int, int) {
    s.Start();
    s.GenerateLoad(load);
    s.Serve();
  });
  out.totals = s.Total();
  out.virtual_us = report.final_virtual_us;
  if (out.virtual_us > 0) {
    out.goodput_rps = static_cast<double>(out.totals.completed) /
                      (out.virtual_us / 1e6);
  }
  if (out.totals.requests_received > 0) {
    out.shed_fraction =
        static_cast<double>(out.totals.shed_queue +
                            out.totals.shed_deadline) /
        static_cast<double>(out.totals.requests_received);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  JsonInit("service", argc, argv);
  bool relaxed = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--relaxed") == 0) relaxed = true;
  }

  svc::SvcConfig cfg;
  cfg.sessions = 256;
  cfg.workers = 4;
  cfg.service_time_us = 5.0;
  cfg.queue_cap = 32;
  // Analytic capacity: `workers` concurrent requests of service_time each
  // => workers / service_time completions per second per PE.
  const double capacity_rps = cfg.workers / (cfg.service_time_us * 1e-6);
  const std::uint64_t requests = QuickRun() ? 2000 : 10000;

  std::printf("service workload: %d PEs, %d workers/PE, %.1f us service, "
              "queue cap %u, capacity %.0f req/s/PE (virtual time)\n",
              kNpes, cfg.workers, cfg.service_time_us, cfg.queue_cap,
              capacity_rps);
  std::printf("%-8s %12s %12s %8s %10s %10s %10s\n", "rate", "offered/s",
              "goodput/s", "shed%", "p50_us", "p99_us", "p999_us");
  JsonAdd("capacity_rps_per_pe", capacity_rps, "req/s");

  // Saturation baseline: goodput at exactly 1.0x capacity.
  const RateResult sat = RunAtRate(cfg, capacity_rps, requests);

  bool slo_ok = true;
  const struct {
    const char* label;
    double factor;
  } kRates[] = {{"0.5x", 0.5}, {"0.8x", 0.8}, {"1.2x", 1.2}};
  for (const auto& rate : kRates) {
    const RateResult r = RunAtRate(cfg, capacity_rps * rate.factor, requests);
    const util::LogHistogram& h = r.totals.latency_ns;
    const double p50 = static_cast<double>(h.Quantile(0.5)) / 1000.0;
    const double p99 = static_cast<double>(h.Quantile(0.99)) / 1000.0;
    const double p999 = static_cast<double>(h.Quantile(0.999)) / 1000.0;
    std::printf("%-8s %12.0f %12.0f %7.2f%% %10.2f %10.2f %10.2f\n",
                rate.label, capacity_rps * rate.factor * kNpes,
                r.goodput_rps, r.shed_fraction * 100.0, p50, p99, p999);

    char name[64];
    std::snprintf(name, sizeof(name), "goodput_rps/%s", rate.label);
    JsonAdd(name, r.goodput_rps, "req/s");
    std::snprintf(name, sizeof(name), "shed_fraction/%s", rate.label);
    JsonAdd(name, r.shed_fraction, "ratio");
    std::snprintf(name, sizeof(name), "latency/%s", rate.label);
    JsonAddPercentile(name, 0.5, p50, "us");
    JsonAddPercentile(name, 0.99, p99, "us");
    JsonAddPercentile(name, 0.999, p999, "us");

    if (rate.factor > 1.0) {
      // The overload SLO: shedding must engage, admitted-request p99 must
      // stay inside the queue-cap bound, and goodput must hold >= 90% of
      // the saturation baseline.
      const double bound_us =
          cfg.service_time_us *
          static_cast<double>((cfg.queue_cap - 1 + cfg.workers) /
                                  cfg.workers +
                              2);
      if (r.totals.shed_queue + r.totals.shed_deadline == 0) {
        std::printf("SLO VIOLATION: no shedding at %s offered load\n",
                    rate.label);
        slo_ok = false;
      }
      if (p99 > bound_us) {
        std::printf("SLO VIOLATION: admitted p99 %.2f us exceeds queue-cap "
                    "bound %.2f us\n",
                    p99, bound_us);
        slo_ok = false;
      }
      if (r.goodput_rps < 0.9 * sat.goodput_rps) {
        std::printf("SLO VIOLATION: overload goodput %.0f below 90%% of "
                    "saturation %.0f\n",
                    r.goodput_rps, sat.goodput_rps);
        slo_ok = false;
      }
    }
  }
  JsonAdd("saturation_goodput_rps", sat.goodput_rps, "req/s");

  const int json_rc = JsonFlush();
  if (!slo_ok && relaxed) {
    std::printf("(--relaxed: SLO violations reported, not failing)\n");
  }
  return json_rc != 0 ? json_rc : (slo_ok || relaxed ? 0 : 1);
}
