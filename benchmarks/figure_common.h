// Shared machinery for reproducing the paper's evaluation figures (4-8).
//
// The paper measures round-trip message time vs message size on five 1996
// machines, with and without the scheduler queue in the path.  Per
// DESIGN.md §2 we substitute each machine's wire with a calibrated NetModel
// and *measure* the Converse software path cost of this implementation on
// the in-process machine:
//
//   converse(s)      = model.OnewayUs(s) + measured_path_us(s)
//   converse_sched(s)= converse(s)       + measured_sched_extra_us(s)
//
// where measured_path_us covers exactly what Converse adds over a native
// message layer — allocation, header fill, payload copy through the
// machine queue, handler-table dispatch, free — and sched_extra covers the
// grab + re-enqueue + dequeue + second dispatch of queue-using languages
// (the cost the paper's Figure 6 isolates).
//
// A third series scales the measured software cost by kEraCpuScale to
// present the curves in 1996-CPU terms (the paper's hosts executed roughly
// 250x fewer instructions per second than this machine); the shape
// assertions never use the scaled series.
#pragma once

#include <cstddef>
#include <vector>

#include "converse/netmodel.h"

namespace converse::bench {

/// CPU-speed ratio used only for the presentation-scaled series.
inline constexpr double kEraCpuScale = 250.0;

/// Message sizes the paper's figures sweep (bytes of payload).
std::vector<std::size_t> FigureSizes();

/// Measured per-message software costs on this host.
struct SoftwareCosts {
  std::vector<std::size_t> sizes;
  std::vector<double> path_us;         // full Converse path, per size
  std::vector<double> sched_extra_us;  // additional scheduler-queue cost

  double PathUs(std::size_t size) const;
  double SchedExtraUs(std::size_t size) const;
};

/// Run the measurement machine (2 PEs; self-contained, a few hundred ms).
SoftwareCosts MeasureSoftwareCosts(int reps_per_size = 3000);

/// Print one figure: the size sweep with native/converse[/sched] series,
/// then evaluate and print the paper's shape criteria.  Returns the number
/// of failed shape checks (0 = reproduction matches the paper's shape).
int EmitFigure(const char* figure_id, const char* title,
               const NetModel& model, const SoftwareCosts& costs,
               bool with_sched_series);

}  // namespace converse::bench
