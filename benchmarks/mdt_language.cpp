// §4 qualitative claim bench: "one of us was able to implement this
// language in about a day's time. The entire runtime for this language
// consists of about 100 lines of C code."
//
// Exercises the mdt coordination language end to end (spawn, single-tag
// sends, blocking receives) and reports its throughput plus the measured
// size of the runtime it rides on — the composability claim, quantified.
#include <atomic>
#include <cstdio>
#include <cstring>

#include "converse/converse.h"
#include "converse/langs/mdt.h"

using namespace converse;
using namespace converse::mdt;

namespace {

constexpr int kPairs = 64;
constexpr int kMsgsPerPair = 200;

}  // namespace

int main() {
  std::atomic<long> received{0};
  std::atomic<double> wall_ms{0};

  RunConverse(2, [&](int pe, int) {
    const int pong_fn = MdtRegister([](const void* arg, std::size_t) {
      MdtThreadId peer;
      std::memcpy(&peer, arg, sizeof(peer));
      const MdtThreadId me = MdtSelf();
      MdtSend(peer, 0, &me, sizeof(me));  // introduce myself
      for (int i = 0; i < kMsgsPerPair; ++i) {
        long v = 0;
        MdtRecv(1, &v, sizeof(v));
        ++v;
        MdtSend(peer, 2, &v, sizeof(v));
      }
    });
    const int ping_fn = MdtRegister([&](const void*, std::size_t) {
      const MdtThreadId me = MdtSelf();
      MdtSpawn(pong_fn, &me, sizeof(me), /*on_pe=*/1);
      MdtThreadId peer = 0;
      MdtRecv(0, &peer, sizeof(peer));
      for (int i = 0; i < kMsgsPerPair; ++i) {
        long v = i;
        MdtSend(peer, 1, &v, sizeof(v));
        MdtRecv(2, &v, sizeof(v));
        ++received;
      }
      if (received.load() == kPairs * kMsgsPerPair) {
        ConverseBroadcastExit();
      }
    });
    if (pe == 0) {
      const double t0 = CmiTimer();
      for (int p = 0; p < kPairs; ++p) MdtSpawnLocal(ping_fn, nullptr, 0);
      CsdScheduler(-1);
      wall_ms = (CmiTimer() - t0) * 1e3;
    } else {
      CsdScheduler(-1);
    }
  });

  const long total = received.load();
  std::printf("# mdt coordination language (paper §4)\n");
  std::printf("thread pairs:               %d\n", kPairs);
  std::printf("round trips per pair:       %d\n", kMsgsPerPair);
  std::printf("completed round trips:      %ld\n", total);
  std::printf("wall time:                  %.1f ms\n", wall_ms.load());
  std::printf("round trips / second:       %.0f\n",
              total / (wall_ms.load() * 1e-3));
  std::printf(
      "# runtime size: src/langs/mdt/mdt.cpp is ~230 lines of C++ built\n"
      "# entirely from the message manager, thread object, scheduler and\n"
      "# seed balancer — the paper's ~100-line-runtime claim, reproduced\n"
      "# with bounds checking and placement via Cld included.\n");
  return total == static_cast<long>(kPairs) * kMsgsPerPair ? 0 : 1;
}
