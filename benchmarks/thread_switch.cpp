// Ablation: thread-object context switch cost per backend (hand-written
// x86-64 fiber switch vs ucontext's swapcontext-with-sigprocmask), plus
// create/awaken/schedule cost — the primitives behind §3.2.2.
#include <benchmark/benchmark.h>

#include "converse/converse.h"
#include "converse/util/timer.h"

using namespace converse;

namespace {

CthBackend BackendArg(const benchmark::State& state) {
  return state.range(0) == 0 ? CthBackend::kAsm : CthBackend::kUcontext;
}

bool SkipUnlessAvailable(benchmark::State& state) {
  if (!CthBackendAvailable(BackendArg(state))) {
    state.SkipWithError("backend not available in this build");
    return true;
  }
  return false;
}

}  // namespace

/// Raw switch cost: two threads CthResume each other k times.
static void BM_ContextSwitch(benchmark::State& state) {
  if (SkipUnlessAvailable(state)) return;
  constexpr int kSwitches = 20000;
  for (auto _ : state) {
    double sec = 0;
    RunConverse(1, [&](int, int) {
      CthInit(BackendArg(state));
      CthThread* a = nullptr;
      CthThread* b = nullptr;
      a = CthCreate([&] {
        for (int i = 0; i < kSwitches / 2; ++i) CthResume(b);
        CthResume(b);
      });
      b = CthCreate([&] {
        for (int i = 0; i < kSwitches / 2; ++i) CthResume(a);
      });
      const auto t0 = util::NowNs();
      CthResume(a);
      // a and b alternate until both exit back through the scheduler ctx.
      const auto t1 = util::NowNs();
      sec = static_cast<double>(t1 - t0) * 1e-9;
      CsdScheduleUntilIdle();
    });
    state.SetIterationTime(sec / kSwitches);
  }
  state.SetLabel(state.range(0) == 0 ? "asm" : "ucontext");
}
BENCHMARK(BM_ContextSwitch)->Arg(0)->Arg(1)->UseManualTime()->Iterations(5);

/// Suspend/awaken through the scheduler: the ready-thread-as-message path.
static void BM_YieldThroughScheduler(benchmark::State& state) {
  if (SkipUnlessAvailable(state)) return;
  constexpr int kYields = 20000;
  for (auto _ : state) {
    double sec = 0;
    RunConverse(1, [&](int, int) {
      CthInit(BackendArg(state));
      CthThread* t = CthCreate([&] {
        for (int i = 0; i < kYields; ++i) CthYield();
      });
      CthAwaken(t);
      const auto t0 = util::NowNs();
      CsdScheduleUntilIdle();
      const auto t1 = util::NowNs();
      sec = static_cast<double>(t1 - t0) * 1e-9;
    });
    state.SetIterationTime(sec / kYields);
  }
  state.SetLabel(state.range(0) == 0 ? "asm" : "ucontext");
}
BENCHMARK(BM_YieldThroughScheduler)->Arg(0)->Arg(1)->UseManualTime()->Iterations(5);

/// Thread creation + first run + exit (stack mmap included).
static void BM_CreateRunExit(benchmark::State& state) {
  if (SkipUnlessAvailable(state)) return;
  constexpr int kThreads = 2000;
  for (auto _ : state) {
    double sec = 0;
    RunConverse(1, [&](int, int) {
      CthInit(BackendArg(state));
      const auto t0 = util::NowNs();
      for (int i = 0; i < kThreads; ++i) {
        CthResume(CthCreate([] {}));
      }
      const auto t1 = util::NowNs();
      sec = static_cast<double>(t1 - t0) * 1e-9;
    });
    state.SetIterationTime(sec / kThreads);
  }
  state.SetLabel(state.range(0) == 0 ? "asm" : "ucontext");
}
BENCHMARK(BM_CreateRunExit)->Arg(0)->Arg(1)->UseManualTime()->Iterations(5);

BENCHMARK_MAIN();
