// Global-pointer operation costs (EMI get/put, appendix §3.4): local fast
// path vs request/reply round trips, sync vs pipelined async.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

#include "converse/converse.h"
#include "converse/util/timer.h"

using namespace converse;

namespace {

double LocalGetUs(int reps) {
  std::atomic<double> us{0};
  RunConverse(1, [&](int, int) {
    std::vector<double> region(64, 1.0);
    GlobalPtr g;
    CmiGptrCreate(&g, region.data(),
                  static_cast<unsigned>(region.size() * 8));
    std::vector<double> out(64);
    const auto t0 = util::NowNs();
    for (int i = 0; i < reps; ++i) {
      CmiSyncGet(&g, out.data(), static_cast<unsigned>(out.size() * 8));
    }
    us = static_cast<double>(util::NowNs() - t0) * 1e-3 / reps;
  });
  return us.load();
}

double RemoteSyncGetUs(int reps, unsigned bytes) {
  std::atomic<double> us{0};
  RunConverse(2, [&](int pe, int) {
    static std::vector<char> region;
    region.assign(bytes, 'r');
    static GlobalPtr table[2];
    int carry = CmiRegisterHandler([](void* msg) {
      GlobalPtr g;
      std::memcpy(&g, CmiMsgPayload(msg), sizeof(g));
      table[g.pe] = g;
    });
    GlobalPtr mine;
    CmiGptrCreate(&mine, region.data(), bytes);
    void* m = CmiMakeMessage(carry, &mine, sizeof(mine));
    CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
    CmiBarrierBlocking();
    if (pe == 0) {
      std::vector<char> out(bytes);
      const auto t0 = util::NowNs();
      for (int i = 0; i < reps; ++i) {
        CmiSyncGet(&table[1], out.data(), bytes);
      }
      us = static_cast<double>(util::NowNs() - t0) * 1e-3 / reps;
    }
    CmiBarrierBlocking();
  });
  return us.load();
}

double RemoteAsyncPipelinedUs(int reps, unsigned bytes, int window) {
  std::atomic<double> us{0};
  RunConverse(2, [&](int pe, int) {
    static std::vector<char> region;
    region.assign(bytes, 'r');
    static GlobalPtr table[2];
    int carry = CmiRegisterHandler([](void* msg) {
      GlobalPtr g;
      std::memcpy(&g, CmiMsgPayload(msg), sizeof(g));
      table[g.pe] = g;
    });
    GlobalPtr mine;
    CmiGptrCreate(&mine, region.data(), bytes);
    void* m = CmiMakeMessage(carry, &mine, sizeof(mine));
    CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
    CmiBarrierBlocking();
    if (pe == 0) {
      std::vector<std::vector<char>> bufs(
          static_cast<std::size_t>(window), std::vector<char>(bytes));
      const auto t0 = util::NowNs();
      for (int i = 0; i < reps; i += window) {
        std::vector<CommHandle> hs;
        for (int w = 0; w < window; ++w) {
          hs.push_back(CmiGet(&table[1],
                              bufs[static_cast<std::size_t>(w)].data(),
                              bytes));
        }
        for (CommHandle h : hs) CmiWaitHandle(h);
      }
      us = static_cast<double>(util::NowNs() - t0) * 1e-3 / reps;
    }
    CmiBarrierBlocking();
  });
  return us.load();
}

}  // namespace

int main() {
  std::printf("# Global pointer (one-sided get/put) operation costs\n");
  const double local = LocalGetUs(100000);
  std::printf("%-46s %9.3f us\n", "local CmiSyncGet (512 B, fast path)",
              local);
  const double sync64 = RemoteSyncGetUs(4000, 64);
  std::printf("%-46s %9.3f us\n", "remote CmiSyncGet (64 B round trip)",
              sync64);
  const double sync4k = RemoteSyncGetUs(2000, 4096);
  std::printf("%-46s %9.3f us\n", "remote CmiSyncGet (4 KB round trip)",
              sync4k);
  const double piped = RemoteAsyncPipelinedUs(4000, 64, 8);
  std::printf("%-46s %9.3f us\n",
              "remote CmiGet, window=8 (amortized per get)", piped);

  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::printf("# claim-check %-52s %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) ++failures;
  };
  check(local < 5.0, "local fast path avoids the message layer");
  check(piped < sync64 * 1.05,
        "pipelined async gets amortize the round trip");
  return failures == 0 ? 0 : 1;
}
