#include "bench_json.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace converse::bench {
namespace {

struct Metric {
  std::string name;
  double value;
  std::string unit;
};

struct Percentile {
  std::string series;
  double quantile;
  double value;
  std::string unit;
};

struct State {
  std::string benchmark;
  std::string path;  // empty = stdout
  bool json = false;
  bool quick = false;
  std::vector<Metric> metrics;
  std::vector<Percentile> percentiles;
};

State& S() {
  static State s;
  return s;
}

}  // namespace

void JsonInit(const char* benchmark_name, int argc, char** argv) {
  State& s = S();
  s.benchmark = benchmark_name;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--json") == 0) {
      s.json = true;
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      s.json = true;
      s.path = a + 7;
    } else if (std::strcmp(a, "--quick") == 0) {
      s.quick = true;
    }
  }
}

bool JsonEnabled() { return S().json; }

bool QuickRun() { return S().quick; }

void JsonAdd(const char* name, double value, const char* unit) {
  State& s = S();
  if (!s.json) return;
  s.metrics.push_back(Metric{name, value, unit});
}

void JsonAddPercentile(const char* series, double quantile, double value,
                       const char* unit) {
  State& s = S();
  if (!s.json) return;
  s.percentiles.push_back(Percentile{series, quantile, value, unit});
}

int JsonFlush() {
  State& s = S();
  if (!s.json) return 0;
  std::FILE* out = stdout;
  if (!s.path.empty()) {
    out = std::fopen(s.path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n",
                   s.path.c_str());
      return 1;
    }
  }
  std::fprintf(out, "{\"benchmark\": \"%s\", \"metrics\": [",
               s.benchmark.c_str());
  for (std::size_t i = 0; i < s.metrics.size(); ++i) {
    const Metric& m = s.metrics[i];
    std::fprintf(out, "%s\n  {\"name\": \"%s\", \"value\": %.6g, "
                 "\"unit\": \"%s\"}",
                 i == 0 ? "" : ",", m.name.c_str(), m.value, m.unit.c_str());
  }
  std::fprintf(out, "\n]");
  if (!s.percentiles.empty()) {
    // Same no-library discipline as the metrics array: flat rows, numeric
    // values only.  Present only when a benchmark recorded quantiles.
    std::fprintf(out, ", \"percentiles\": [");
    for (std::size_t i = 0; i < s.percentiles.size(); ++i) {
      const Percentile& p = s.percentiles[i];
      std::fprintf(out,
                   "%s\n  {\"series\": \"%s\", \"quantile\": %g, "
                   "\"value\": %.6g, \"unit\": \"%s\"}",
                   i == 0 ? "" : ",", p.series.c_str(), p.quantile, p.value,
                   p.unit.c_str());
    }
    std::fprintf(out, "\n]");
  }
  std::fprintf(out, "}\n");
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace converse::bench
