// Ablation: cost of the queueing strategies (paper §2.3 — prioritization
// must not penalize languages that do not use it).  FIFO/LIFO use the
// deque path; prioritized entries pay the heap.
#include <benchmark/benchmark.h>

#include <vector>

#include "converse/msg.h"
#include "converse/queueing.h"
#include "converse/util/rng.h"

using namespace converse;

namespace {

void* MakeMsg() { return CmiAlloc(CmiMsgHeaderSizeBytes()); }

}  // namespace

static void BM_EnqueueDequeueFifo(benchmark::State& state) {
  CqsQueue q;
  const int batch = static_cast<int>(state.range(0));
  std::vector<void*> msgs(batch);
  for (auto& m : msgs) m = MakeMsg();
  for (auto _ : state) {
    for (void* m : msgs) q.Enqueue(m);
    for (int i = 0; i < batch; ++i) benchmark::DoNotOptimize(q.Dequeue());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  for (void* m : msgs) CmiFree(m);
}
BENCHMARK(BM_EnqueueDequeueFifo)->Arg(64)->Arg(1024);

static void BM_EnqueueDequeueLifo(benchmark::State& state) {
  CqsQueue q;
  const int batch = static_cast<int>(state.range(0));
  std::vector<void*> msgs(batch);
  for (auto& m : msgs) m = MakeMsg();
  for (auto _ : state) {
    for (void* m : msgs) q.EnqueueLifo(m);
    for (int i = 0; i < batch; ++i) benchmark::DoNotOptimize(q.Dequeue());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  for (void* m : msgs) CmiFree(m);
}
BENCHMARK(BM_EnqueueDequeueLifo)->Arg(64)->Arg(1024);

static void BM_EnqueueDequeueIntPrio(benchmark::State& state) {
  CqsQueue q;
  const int batch = static_cast<int>(state.range(0));
  std::vector<void*> msgs(batch);
  for (auto& m : msgs) m = MakeMsg();
  util::Xoshiro256 rng(11);
  std::vector<std::int32_t> prios(static_cast<std::size_t>(batch));
  for (auto& p : prios) p = static_cast<std::int32_t>(rng.Below(1000)) - 500;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      q.EnqueueIntPrio(msgs[static_cast<std::size_t>(i)],
                       prios[static_cast<std::size_t>(i)]);
    }
    for (int i = 0; i < batch; ++i) benchmark::DoNotOptimize(q.Dequeue());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  for (void* m : msgs) CmiFree(m);
}
BENCHMARK(BM_EnqueueDequeueIntPrio)->Arg(64)->Arg(1024);

static void BM_EnqueueDequeueBitvecPrio(benchmark::State& state) {
  CqsQueue q;
  const int batch = static_cast<int>(state.range(0));
  const int nbits = static_cast<int>(state.range(1));
  std::vector<void*> msgs(batch);
  for (auto& m : msgs) m = MakeMsg();
  util::Xoshiro256 rng(13);
  const std::size_t nwords = static_cast<std::size_t>((nbits + 31) / 32);
  std::vector<std::vector<std::uint32_t>> prios;
  for (int i = 0; i < batch; ++i) {
    std::vector<std::uint32_t> w(nwords);
    for (auto& x : w) x = static_cast<std::uint32_t>(rng.Next());
    prios.push_back(std::move(w));
  }
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      q.EnqueueBitvecPrio(msgs[static_cast<std::size_t>(i)],
                          prios[static_cast<std::size_t>(i)].data(), nbits);
    }
    for (int i = 0; i < batch; ++i) benchmark::DoNotOptimize(q.Dequeue());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  for (void* m : msgs) CmiFree(m);
}
BENCHMARK(BM_EnqueueDequeueBitvecPrio)
    ->Args({64, 32})
    ->Args({64, 128})
    ->Args({1024, 32});

// The need-based-cost comparison in one number: mixed queue where only a
// fraction of entries are prioritized (the common Charm profile).
static void BM_MixedMostlyFifo(benchmark::State& state) {
  CqsQueue q;
  constexpr int kBatch = 1024;
  std::vector<void*> msgs(kBatch);
  for (auto& m : msgs) m = MakeMsg();
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      if (i % 16 == 0) {
        q.EnqueueIntPrio(msgs[static_cast<std::size_t>(i)], -i);
      } else {
        q.Enqueue(msgs[static_cast<std::size_t>(i)]);
      }
    }
    for (int i = 0; i < kBatch; ++i) benchmark::DoNotOptimize(q.Dequeue());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  for (void* m : msgs) CmiFree(m);
}
BENCHMARK(BM_MixedMostlyFifo);

BENCHMARK_MAIN();
