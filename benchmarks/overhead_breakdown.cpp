// §5.1 claim bench: "An acceptable overhead in this context is a few tens
// of instructions over and above the cost of such operations in a native
// implementation" (§3, completeness-of-coverage), and "languages and
// applications pay the overhead only for features that they use."
//
// Prints a per-operation breakdown of the Converse message path in
// nanoseconds, so the need-based-cost claim is checkable operation by
// operation: a language that skips the scheduler queue never pays the
// queue rows.
//
// Flags: --json[=path] machine-readable results, --quick smoke-size reps.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_json.h"
#include "converse/converse.h"
#include "converse/util/timer.h"

using namespace converse;

namespace {

int g_reps = 200000;

double TimeNs(const char* label, const std::function<void()>& op) {
  // One warmup pass, then the measured pass.
  op();
  const auto t0 = util::NowNs();
  op();
  const auto t1 = util::NowNs();
  const double ns = static_cast<double>(t1 - t0) / g_reps;
  std::printf("%-44s %10.1f ns/msg\n", label, ns);
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonInit("overhead_breakdown", argc, argv);
  if (bench::QuickRun()) g_reps = 20000;
  std::printf("# Converse software overhead breakdown (per message, %d reps)\n",
              g_reps);
  std::printf("# host: in-process machine, 1 PE, payload 64 B\n");
  double alloc_ns = 0, dispatch_ns = 0, path_ns = 0, queue_ns = 0;

  RunConverse(1, [&](int pe, int) {
    if (pe != 0) return;
    char payload[64];
    std::memset(payload, 'p', sizeof(payload));

    int sink = CmiRegisterHandler([](void*) {});
    int second = CmiRegisterHandler([](void* msg) { CmiFree(msg); });
    int first = CmiRegisterHandler([second](void* msg) {
      CmiGrabBuffer(&msg);
      CmiSetHandler(msg, second);
      CsdEnqueue(msg);
    });

    alloc_ns = TimeNs("CmiAlloc + header fill + payload copy + free", [&] {
      for (int i = 0; i < g_reps; ++i) {
        void* m = CmiMakeMessage(sink, payload, sizeof(payload));
        CmiFree(m);
      }
    });

    dispatch_ns = TimeNs("handler-table dispatch (index -> call)", [&] {
      void* m = CmiMakeMessage(sink, payload, sizeof(payload));
      for (int i = 0; i < g_reps; ++i) {
        CmiGetHandlerFunction(m)(m);
      }
      CmiFree(m);
    });

    path_ns = TimeNs("full path: alloc+send(self)+deliver+free", [&] {
      for (int i = 0; i < g_reps; ++i) {
        void* m = CmiMakeMessage(sink, payload, sizeof(payload));
        CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
        CmiDeliverMsgs(1);
      }
    });

    queue_ns = TimeNs("scheduler queue: grab+enqueue+dequeue+dispatch", [&] {
      for (int i = 0; i < g_reps; ++i) {
        void* m = CmiMakeMessage(first, payload, sizeof(payload));
        CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
        CmiDeliverMsgs(1);
        CsdScheduler(1);
      }
    });
  });

  // Broadcast case: send-side cost of a 4-way CmiSyncBroadcastAllAndFree
  // (one serialized copy per remote destination, original delivered to
  // self), normalized per destination PE.
  constexpr int kBcastPes = 4;
  const int bcast_reps = g_reps / 20;
  double bcast_ns = 0;
  RunConverse(kBcastPes, [&](int pe, int np) {
    const long expected = bcast_reps + 64;  // +64 warmup broadcasts
    long got = 0;
    int sink = CmiRegisterHandler([&](void*) {
      if (++got == expected) CsdExitScheduler();
    });
    if (pe == 0) {
      char payload[64];
      std::memset(payload, 'b', sizeof(payload));
      // Warmup round so every PE's in-queue is hot.
      for (int i = 0; i < 64; ++i) {
        void* m = CmiMakeMessage(sink, payload, sizeof(payload));
        CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
      }
      const auto t0 = util::NowNs();
      for (int i = 0; i < bcast_reps; ++i) {
        void* m = CmiMakeMessage(sink, payload, sizeof(payload));
        CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
      }
      const auto t1 = util::NowNs();
      bcast_ns = static_cast<double>(t1 - t0) / bcast_reps / np;
      std::printf("%-44s %10.1f ns/msg\n",
                  "broadcast-all send side (per destination)", bcast_ns);
    }
    CsdScheduler(-1);
  });

  const double sched_extra = queue_ns - path_ns;
  std::printf("%-44s %10.1f ns/msg\n",
              "=> scheduling extra (only queue users pay)",
              sched_extra > 0 ? sched_extra : 0.0);

  bench::JsonAdd("alloc_fill_copy_free_ns", alloc_ns, "ns");
  bench::JsonAdd("dispatch_ns", dispatch_ns, "ns");
  bench::JsonAdd("full_path_ns", path_ns, "ns");
  bench::JsonAdd("sched_queue_path_ns", queue_ns, "ns");
  bench::JsonAdd("broadcast_per_dest_ns", bcast_ns, "ns");

  // Sanity: on a ~1ns/instruction host, "a few tens of instructions" means
  // the non-copy overhead should be well under a microsecond.
  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::printf("# claim-check %-52s %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) ++failures;
  };
  check(dispatch_ns < 1000, "dispatch costs tens of ns (tens of instructions)");
  check(path_ns < 5000, "full software path under 5 us on modern hardware");
  check(sched_extra < 2000, "scheduling adder is sub-2us here (9-15us on 1996 hosts)");
  failures += bench::JsonFlush();
  return failures == 0 ? 0 : 1;
}
