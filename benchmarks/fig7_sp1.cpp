// Reproduces Figure 7: "SP1 Message Passing Performance".
#include <cstdlib>
#include "figure_common.h"

int main() {
  using namespace converse;
  const auto costs = bench::MeasureSoftwareCosts();
  const int failures = bench::EmitFigure(
      "Figure 7", "SP1 Message Passing Performance", netmodels::IbmSp1(),
      costs, /*with_sched_series=*/false);
  return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
