// Reproduces Figure 7: "SP1 Message Passing Performance".
#include <cstdlib>
#include "bench_json.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace converse;
  bench::JsonInit("fig7_sp1", argc, argv);
  const auto costs =
      bench::MeasureSoftwareCosts(bench::QuickRun() ? 300 : 3000);
  const int failures = bench::EmitFigure(
      "Figure 7", "SP1 Message Passing Performance", netmodels::IbmSp1(),
      costs, /*with_sched_series=*/false);
  if (bench::JsonFlush() != 0) return EXIT_FAILURE;
  return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
